"""Reproducible random-number streams for simulations.

Every stochastic component of the simulation draws from its own named
substream so that (a) runs are reproducible given a root seed, and (b)
changing how often one component draws does not perturb the variates seen
by the others — the classic "common random numbers" discipline used in
simulation studies.

Seeding is delegated to :mod:`repro.rng` (the repository's single
seeding authority): :class:`RandomStreams` is the simulation-facing
alias of :class:`repro.rng.RNGManager`, kept for the established stream
naming convention (``"lan.<src>-><dst>"``, ``"client.<host>.think"``,
…).  The derivation is byte-identical to the historic in-module scheme,
so the migration changed no simulation result.

Distributions used by the reproduction (normal/truncated-normal service
delays, exponential think times, bursty link delays) are exposed as small
wrapper classes with a uniform ``sample()`` interface so scenario files can
configure them declaratively.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
import numpy.typing as npt

from ..rng import RNGManager

__all__ = [
    "RandomStreams",
    "Distribution",
    "Constant",
    "Uniform",
    "Exponential",
    "Normal",
    "TruncatedNormal",
    "LogNormal",
    "Pareto",
    "Empirical",
    "Mixture",
    "MarkovModulated",
]


class RandomStreams(RNGManager):
    """A family of independent, named random substreams.

    A thin subclass of :class:`repro.rng.RNGManager` that pins the
    simulation layer's seeding to the shared derivation scheme
    (docs/REPRODUCIBILITY.md).  ``seed`` is the legacy alias for
    ``base_seed``; ``stream``/``substream``/``fork`` come from the
    manager unchanged.

    >>> streams = RandomStreams(seed=42)
    >>> rng = streams.stream("replica-3.service")
    >>> rng is streams.stream("replica-3.service")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(base_seed=seed)


class Distribution:
    """Base class for one-dimensional sampling distributions."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one variate."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean where known; used by tests and load balancing."""
        raise NotImplementedError

    def sample_many(
        self, rng: np.random.Generator, n: int
    ) -> npt.NDArray[np.float64]:
        """Draw ``n`` variates (vectorized where possible)."""
        return np.array([self.sample(rng) for _ in range(n)])


class Constant(Distribution):
    """Degenerate distribution: always ``value``."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"constant delay must be >= 0, got {value}")
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def sample_many(
        self, rng: np.random.Generator, n: int
    ) -> npt.NDArray[np.float64]:
        return np.full(n, self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value})"


class Uniform(Distribution):
    """Uniform on ``[low, high)``."""

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ValueError(f"need low <= high, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def sample_many(
        self, rng: np.random.Generator, n: int
    ) -> npt.NDArray[np.float64]:
        return rng.uniform(self.low, self.high, size=n)

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Exponential(Distribution):
    """Exponential with the given mean (not rate)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"exponential mean must be > 0, got {mean}")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def mean(self) -> float:
        return self._mean

    def sample_many(
        self, rng: np.random.Generator, n: int
    ) -> npt.NDArray[np.float64]:
        return rng.exponential(self._mean, size=n)

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class Normal(Distribution):
    """Normal(mu, sigma), clipped at zero (delays cannot be negative)."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return max(0.0, float(rng.normal(self.mu, self.sigma)))

    def mean(self) -> float:
        # Mean of the zero-clipped normal.
        if self.sigma == 0:
            return max(0.0, self.mu)
        z = self.mu / self.sigma
        phi = math.exp(-0.5 * z * z) / math.sqrt(2 * math.pi)
        cdf = 0.5 * (1 + math.erf(z / math.sqrt(2)))
        return self.mu * cdf + self.sigma * phi

    def sample_many(
        self, rng: np.random.Generator, n: int
    ) -> npt.NDArray[np.float64]:
        return np.clip(rng.normal(self.mu, self.sigma, size=n), 0.0, None)

    def __repr__(self) -> str:
        return f"Normal(mu={self.mu}, sigma={self.sigma})"


class TruncatedNormal(Distribution):
    """Normal(mu, sigma) resampled until it lands in ``[low, high]``."""

    def __init__(
        self,
        mu: float,
        sigma: float,
        low: float = 0.0,
        high: float = math.inf,
    ) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        if low >= high:
            raise ValueError(f"need low < high, got [{low}, {high}]")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        for _ in range(1000):
            x = float(rng.normal(self.mu, self.sigma))
            if self.low <= x <= self.high:
                return x
        # Pathological truncation window: fall back to clipping.
        return min(max(float(rng.normal(self.mu, self.sigma)), self.low), self.high)

    def mean(self) -> float:
        # Standard truncated-normal mean formula.
        a = (self.low - self.mu) / self.sigma
        b = (self.high - self.mu) / self.sigma

        def phi(x: float) -> float:
            return math.exp(-0.5 * x * x) / math.sqrt(2 * math.pi)

        def cdf(x: float) -> float:
            if math.isinf(x):
                return 1.0 if x > 0 else 0.0
            return 0.5 * (1 + math.erf(x / math.sqrt(2)))

        denom = cdf(b) - cdf(a)
        phi_b = 0.0 if math.isinf(b) else phi(b)
        return self.mu + self.sigma * (phi(a) - phi_b) / denom

    def __repr__(self) -> str:
        return (
            f"TruncatedNormal(mu={self.mu}, sigma={self.sigma}, "
            f"low={self.low}, high={self.high})"
        )


class LogNormal(Distribution):
    """Log-normal parameterized by the *underlying* normal's mu/sigma."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "LogNormal":
        """Build from the distribution's mean and coefficient of variation."""
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return cls(mu, math.sqrt(sigma2))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma * self.sigma / 2.0)

    def sample_many(
        self, rng: np.random.Generator, n: int
    ) -> npt.NDArray[np.float64]:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu}, sigma={self.sigma})"


class Pareto(Distribution):
    """Pareto with scale ``xm`` and shape ``alpha`` (heavy-tailed delays)."""

    def __init__(self, xm: float, alpha: float) -> None:
        if xm <= 0 or alpha <= 0:
            raise ValueError(f"need xm > 0 and alpha > 0, got {xm}, {alpha}")
        self.xm = float(xm)
        self.alpha = float(alpha)

    def sample(self, rng: np.random.Generator) -> float:
        return self.xm * (1.0 + float(rng.pareto(self.alpha)))

    def mean(self) -> float:
        if self.alpha <= 1:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1)

    def __repr__(self) -> str:
        return f"Pareto(xm={self.xm}, alpha={self.alpha})"


class Empirical(Distribution):
    """Resamples uniformly from a fixed set of observed values."""

    def __init__(self, values: Sequence[float]) -> None:
        if not values:
            raise ValueError("empirical distribution needs at least one value")
        self.values = np.asarray(values, dtype=float)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self.values))

    def mean(self) -> float:
        return float(self.values.mean())

    def sample_many(
        self, rng: np.random.Generator, n: int
    ) -> npt.NDArray[np.float64]:
        return rng.choice(self.values, size=n)

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.values)})"


class Mixture(Distribution):
    """Probabilistic mixture of component distributions.

    Useful for bimodal service times (fast cache hits / slow misses).
    """

    def __init__(self, components: Sequence[Distribution], weights: Sequence[float]) -> None:
        if len(components) != len(weights):
            raise ValueError("components and weights must have equal length")
        if not components:
            raise ValueError("mixture needs at least one component")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.components = list(components)
        self.weights = np.asarray([w / total for w in weights], dtype=float)

    def sample(self, rng: np.random.Generator) -> float:
        index = int(rng.choice(len(self.components), p=self.weights))
        return self.components[index].sample(rng)

    def mean(self) -> float:
        return float(
            sum(w * c.mean() for w, c in zip(self.weights, self.components))
        )

    def __repr__(self) -> str:
        return f"Mixture(k={len(self.components)})"


class MarkovModulated(Distribution):
    """Two-state Markov-modulated delay (normal vs. burst periods).

    Models the paper's "occasional periods of high traffic" on LAN links:
    the process sits in a *normal* state and occasionally jumps into a
    *burst* state where delays come from a slower distribution.  State
    sojourns are geometric in the number of samples drawn, with switch
    probabilities ``p_enter_burst`` and ``p_exit_burst``.
    """

    def __init__(
        self,
        normal_dist: Distribution,
        burst_dist: Distribution,
        p_enter_burst: float = 0.01,
        p_exit_burst: float = 0.2,
    ) -> None:
        for name, p in (("p_enter_burst", p_enter_burst), ("p_exit_burst", p_exit_burst)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.normal_dist = normal_dist
        self.burst_dist = burst_dist
        self.p_enter_burst = float(p_enter_burst)
        self.p_exit_burst = float(p_exit_burst)
        self._in_burst = False

    @property
    def in_burst(self) -> bool:
        """Whether the modulating chain is currently in the burst state."""
        return self._in_burst

    def sample(self, rng: np.random.Generator) -> float:
        if self._in_burst:
            if rng.random() < self.p_exit_burst:
                self._in_burst = False
        else:
            if rng.random() < self.p_enter_burst:
                self._in_burst = True
        active = self.burst_dist if self._in_burst else self.normal_dist
        return active.sample(rng)

    def mean(self) -> float:
        # Stationary distribution of the two-state chain.
        p, q = self.p_enter_burst, self.p_exit_burst
        if p + q == 0:
            return self.normal_dist.mean()
        pi_burst = p / (p + q)
        return (1 - pi_burst) * self.normal_dist.mean() + pi_burst * self.burst_dist.mean()

    def __repr__(self) -> str:
        return (
            f"MarkovModulated(normal={self.normal_dist!r}, "
            f"burst={self.burst_dist!r})"
        )
