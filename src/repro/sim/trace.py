"""Structured event tracing for simulations.

Components emit :class:`TraceRecord` entries into a shared
:class:`Tracer`.  Records are cheap named tuples; filtering/aggregation is
done after the run.  The experiment harness uses traces to extract per-stage
latencies (the paper's t0..t4 timestamps), selection decisions and failure
events without the components needing to know about any experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulated time in milliseconds.
    source:
        Name of the emitting component, e.g. ``"client-1.handler"``.
    kind:
        Machine-readable record type, e.g. ``"request.sent"``.
    data:
        Free-form payload describing the occurrence.
    """

    time: float
    source: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects :class:`TraceRecord` entries and offers simple queries."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, source: str, kind: str, **data: Any) -> None:
        """Record one occurrence (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        record = TraceRecord(time=time, source=source, kind=kind, data=data)
        self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` synchronously for every future record."""
        self._listeners.append(listener)

    # -- queries ----------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records with exactly this ``kind``."""
        return [r for r in self.records if r.kind == kind]

    def from_source(self, source: str) -> List[TraceRecord]:
        """All records emitted by ``source``."""
        return [r for r in self.records if r.source == source]

    def select(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Iterator[TraceRecord]:
        """Lazily filter records by kind/source/time window."""
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if source is not None and record.source != source:
                continue
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            yield record

    def clear(self) -> None:
        """Drop all collected records (listeners stay subscribed)."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"<Tracer records={len(self.records)} enabled={self.enabled}>"


class NullTracer(Tracer):
    """A tracer that records nothing; use when traces are not needed."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def emit(self, time: float, source: str, kind: str, **data: Any) -> None:
        return
