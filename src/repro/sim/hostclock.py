"""Per-host virtual clocks: host-local time on top of the kernel clock.

The simulation kernel keeps one perfectly synchronized clock
(:attr:`Simulator.now`).  Real deployments do not: every host reads its
*own* oscillator, which may be offset (skew), run fast or slow (drift),
jump when an operator or NTP steps it, stop entirely (a frozen clock) or
return noisy values (a failing timer interrupt).  The paper's protocol
stamps ``tq``/``ts`` on the replica's clock and ``t0``/``t1``/``t4`` on
the gateway's clock, so reproducing clock faults requires that the two
sides genuinely read *different* clocks.

:class:`HostClock` maps kernel time to host-local time through a
piecewise-linear segment anchored at the last manipulation::

    local(k) = anchor_local + (k - anchor_kernel) * rate      (+ jitter)

A clock that has never been manipulated (and one that has been
``resync()``-ed, modelling an NTP correction) is *pristine*: it returns
the kernel reading bit-for-bit, so routing existing call sites through a
``HostClock`` changes nothing until a fault is injected.

Discipline (enforced by repro-lint rule RL006 for host-level code):

* **timestamps** are host observations and must come from the owning
  host's ``clock.now``;
* **scheduling** (``call_at``/``call_in``/timeouts) stays on the kernel
  — a virtual clock is a read-only view, it never drives the event loop;
* **tracing and physical processes** (load profiles, metrics time axes)
  are omniscient-observer reads and use ``clock.kernel_now`` explicitly,
  which documents the decision at the call site.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .kernel import Simulator

__all__ = ["HostClock", "ClockRegistry"]


class HostClock:
    """A host's local clock: a manipulable view of the kernel clock.

    All mutators re-anchor the piecewise-linear mapping at the current
    kernel instant so the local reading is continuous across a rate
    change and jumps only on :meth:`step`.  ``resync`` restores the
    pristine state (offset 0, rate 1, no jitter), modelling an external
    time service correcting the clock.
    """

    def __init__(self, sim: Simulator, host: str = "") -> None:
        self._sim = sim
        self.host = host
        self._pristine = True
        self._anchor_kernel = 0.0
        self._anchor_local = 0.0
        self._rate = 1.0
        self._frozen = False
        self._jitter_ms = 0.0
        self._jitter_rng: Optional[np.random.Generator] = None
        #: Manipulations applied since construction (diagnostics).
        self.adjustments = 0

    # -- reading ---------------------------------------------------------------

    @property
    def kernel_now(self) -> float:
        """The omniscient kernel clock (tracing/physical-process reads)."""
        return self._sim.now

    @property
    def faulted(self) -> bool:
        """True while the clock deviates from the kernel mapping."""
        return not self._pristine

    def _local(self, kernel_ms: float) -> float:
        if self._frozen:
            return self._anchor_local
        return self._anchor_local + (kernel_ms - self._anchor_kernel) * self._rate

    @property
    def now(self) -> float:
        """This host's local time, in (local) milliseconds."""
        kernel = self._sim.now
        if self._pristine:
            return kernel  # bit-identical to the kernel until faulted
        local = self._local(kernel)
        if self._jitter_ms > 0.0 and self._jitter_rng is not None:
            local += float(
                self._jitter_rng.uniform(-self._jitter_ms, self._jitter_ms)
            )
        return local

    def elapsed_since(self, started_local_ms: float, kernel_elapsed_ms: float) -> float:
        """A duration measured on this clock.

        A healthy clock measures a kernel interval exactly (no float
        residue from anchor arithmetic); a manipulated clock shows its
        fault in the measurement, which is the point of the exercise.
        """
        if self._pristine:
            return kernel_elapsed_ms
        return self.now - started_local_ms

    # -- manipulation (the clock-fault plane drives these) ---------------------

    def _reanchor(self) -> None:
        kernel = self._sim.now
        self._anchor_local = kernel if self._pristine else self._local(kernel)
        self._anchor_kernel = kernel
        self._pristine = False
        self.adjustments += 1

    def step(self, delta_ms: float) -> None:
        """Jump the local reading by ``delta_ms`` (skew / NTP-style step)."""
        self._reanchor()
        self._anchor_local += delta_ms

    def set_rate(self, rate: float) -> None:
        """Run at ``rate`` local ms per kernel ms (drift; 1.0 = nominal)."""
        if rate < 0.0:
            raise ValueError(f"clock rate must be >= 0, got {rate}")
        self._reanchor()
        self._rate = rate

    def freeze(self) -> None:
        """Stop the clock at its current local reading."""
        self._reanchor()
        self._frozen = True

    def unfreeze(self) -> None:
        """Resume from the frozen reading (the freeze interval is lost)."""
        if not self._frozen:
            return
        self._anchor_kernel = self._sim.now
        self._frozen = False
        self.adjustments += 1

    def set_jitter(self, amplitude_ms: float, rng: np.random.Generator) -> None:
        """Add uniform per-read noise of ±``amplitude_ms`` (failing timer)."""
        if amplitude_ms < 0.0:
            raise ValueError(f"jitter amplitude must be >= 0, got {amplitude_ms}")
        self._reanchor()
        self._jitter_ms = amplitude_ms
        self._jitter_rng = rng

    def resync(self) -> None:
        """Snap back to the kernel mapping (an NTP correction)."""
        self._pristine = True
        self._anchor_kernel = 0.0
        self._anchor_local = 0.0
        self._rate = 1.0
        self._frozen = False
        self._jitter_ms = 0.0
        self._jitter_rng = None
        self.adjustments += 1

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "pristine" if self._pristine else (
            "frozen" if self._frozen else f"rate={self._rate}"
        )
        return f"<HostClock {self.host or '?'} {state}>"


class ClockRegistry:
    """Create-on-demand map of host name -> :class:`HostClock`.

    A deployment builds one registry and hands each handler the clock of
    its owning host; the :class:`~repro.faultinject.clock.ClockDriver`
    manipulates the same objects, so a fault on ``s-1`` is visible to
    exactly the code running on ``s-1``.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._clocks: Dict[str, HostClock] = {}

    def clock(self, host: str) -> HostClock:
        """The (lazily created) clock of ``host``."""
        existing = self._clocks.get(host)
        if existing is None:
            existing = HostClock(self._sim, host=host)
            self._clocks[host] = existing
        return existing

    def clocks(self) -> Dict[str, HostClock]:
        """Snapshot of all clocks created so far."""
        return dict(self._clocks)

    def __contains__(self, host: str) -> bool:
        return host in self._clocks

    def __len__(self) -> int:
        return len(self._clocks)
