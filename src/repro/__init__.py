"""repro — reproduction of Krishnamurthy, Sanders & Cukier (DSN 2001),
"A Dynamic Replica Selection Algorithm for Tolerating Timing Faults".

The package provides, from the bottom up:

* :mod:`repro.sim` — a discrete-event simulation kernel (ms clock,
  generator processes, reproducible random streams, tracing);
* :mod:`repro.net` / :mod:`repro.group` / :mod:`repro.orb` — the LAN,
  Maestro/Ensemble-style group communication, and CORBA-style object
  layers AQuA is built on;
* :mod:`repro.core` — the paper's contribution: empirical response-time
  distributions (Equation 2), the probabilistic timeliness model
  (Equation 1), Algorithm 1, and baseline selection policies;
* :mod:`repro.gateway` / :mod:`repro.replica` / :mod:`repro.proteus` —
  the AQuA gateway with its timing fault handler, replica applications,
  and dependability management;
* :mod:`repro.workload` — clients and the :class:`Scenario` builder;
* :mod:`repro.experiments` — harnesses regenerating every figure of the
  paper's evaluation plus the ablations documented in DESIGN.md.

Quickstart::

    from repro import Scenario, ScenarioConfig, QoSSpec

    scenario = Scenario(ScenarioConfig(seed=1, num_replicas=7))
    client = scenario.add_client(
        "client-1", QoSSpec("search", deadline_ms=160.0, min_probability=0.9)
    )
    scenario.run_to_completion()
    print(client.summary())
"""

from .core import (
    DiscretePMF,
    DynamicSelectionPolicy,
    InformationRepository,
    QoSSpec,
    ReplicaProbability,
    ResponseTimeEstimator,
    SelectionPolicy,
    SelectionResult,
    TimingFailureStats,
    select_replicas,
    subset_timeliness_probability,
)
from .gateway import (
    ActiveReplicationClientHandler,
    PassiveReplicationClientHandler,
    ReplyOutcome,
    TimingFaultClientHandler,
    TimingFaultServerHandler,
)
from .sim import RandomStreams, Simulator
from .workload import (
    ClientSummary,
    ClosedLoopClient,
    OpenLoopClient,
    Scenario,
    ScenarioConfig,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulation
    "Simulator",
    "RandomStreams",
    # core model + algorithm
    "DiscretePMF",
    "InformationRepository",
    "ResponseTimeEstimator",
    "subset_timeliness_probability",
    "select_replicas",
    "SelectionResult",
    "ReplicaProbability",
    "SelectionPolicy",
    "DynamicSelectionPolicy",
    "QoSSpec",
    "TimingFailureStats",
    # middleware
    "TimingFaultClientHandler",
    "TimingFaultServerHandler",
    "ActiveReplicationClientHandler",
    "PassiveReplicationClientHandler",
    "ReplyOutcome",
    # workload
    "Scenario",
    "ScenarioConfig",
    "ClientSummary",
    "ClosedLoopClient",
    "OpenLoopClient",
]
