"""Online response-time estimation (paper §5.3.1).

Builds, per replica, the pmf of the response time

    R_i = S_i + W_i + T_i

from the repository's sliding windows: the pmfs of ``S_i`` (service time)
and ``W_i`` (queuing delay) are the relative frequencies of the window
contents, and ``T_i`` (two-way gateway delay) enters as its most recent
measured value.  ``F_{R_i}(t)`` is then read off the convolved pmf.

Computing the distribution is ~90 % of the selection cost the paper
reports in Fig. 3, so the estimator memoizes per-replica pmfs keyed on the
record's version — a pure optimization that leaves results unchanged
(recomputation happens whenever new measurements arrive, which in the
paper's design is on every reply anyway).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .distribution import DiscretePMF
from .repository import InformationRepository, ReplicaRecord

__all__ = ["ResponseTimeEstimator", "QueueScaledEstimator"]


class ResponseTimeEstimator:
    """Estimates ``F_{R_i}(t)`` for the replicas in a repository.

    Parameters
    ----------
    repository:
        The gateway information repository to read measurements from.
    bin_width_ms:
        Quantization grid for the empirical pmfs.  The paper convolves raw
        measured values; a 1 ms grid keeps the convolution support bounded
        while staying well below the deadline scales of interest.
    """

    def __init__(
        self,
        repository: InformationRepository,
        bin_width_ms: float = 1.0,
    ):
        if bin_width_ms <= 0:
            raise ValueError(f"bin_width_ms must be > 0, got {bin_width_ms}")
        self.repository = repository
        self.bin_width_ms = float(bin_width_ms)
        self._cache: Dict[str, Tuple[int, DiscretePMF]] = {}

    # -- model construction ----------------------------------------------------
    def response_time_pmf(self, replica: str) -> Optional[DiscretePMF]:
        """The pmf of ``R_i`` for ``replica``; ``None`` without history."""
        record = self.repository.record(replica)
        if not record.has_history:
            return None
        cached = self._cache.get(replica)
        if cached is not None and cached[0] == record.version:
            return cached[1]
        pmf = self._build_pmf(record)
        self._cache[replica] = (record.version, pmf)
        return pmf

    def _build_pmf(self, record: ReplicaRecord) -> DiscretePMF:
        service_pmf = DiscretePMF.from_samples(
            record.service_times.values(), self.bin_width_ms
        )
        queue_pmf = DiscretePMF.from_samples(
            record.queue_delays.values(), self.bin_width_ms
        )
        base = service_pmf.convolve(queue_pmf)
        # §5.3.1 extension: with a gateway-delay window, T_i enters as a
        # distribution (its own empirical pmf) rather than a point shift.
        if record.gateway_delays is not None and len(record.gateway_delays):
            gateway_pmf = DiscretePMF.from_samples(
                record.gateway_delays.values(), self.bin_width_ms
            )
            return base.convolve(gateway_pmf)
        assert record.gateway_delay_ms is not None  # guarded by has_history
        return base.shift(record.gateway_delay_ms)

    # -- queries -----------------------------------------------------------
    def probability_by(self, replica: str, deadline_ms: float) -> Optional[float]:
        """``F_{R_i}(deadline)`` — probability the reply arrives in time.

        Returns ``None`` when the replica has no usable history (the
        caller then falls back to the paper's select-all bootstrap).
        """
        pmf = self.response_time_pmf(replica)
        if pmf is None:
            return None
        if deadline_ms <= 0:
            return 0.0
        return pmf.cdf(deadline_ms)

    def probabilities_by(self, deadline_ms: float) -> Dict[str, Optional[float]]:
        """``F_{R_i}(deadline)`` for every tracked replica."""
        return {
            replica: self.probability_by(replica, deadline_ms)
            for replica in self.repository.replicas()
        }

    def expected_response_time(self, replica: str) -> Optional[float]:
        """Mean of the modeled response time (used by mean-based baselines)."""
        pmf = self.response_time_pmf(replica)
        if pmf is None:
            return None
        return pmf.mean()

    def invalidate(self, replica: Optional[str] = None) -> None:
        """Drop memoized pmfs (all replicas when ``replica`` is None)."""
        if replica is None:
            self._cache.clear()
        else:
            self._cache.pop(replica, None)

    def __repr__(self) -> str:
        return (
            f"<ResponseTimeEstimator bin={self.bin_width_ms}ms "
            f"replicas={len(self.repository)}>"
        )


class QueueScaledEstimator(ResponseTimeEstimator):
    """Extension: scale the queuing-delay pmf by the current queue depth.

    The paper's repository stores the replica's *current* queue length but
    the base model uses only the windowed queuing-delay history.  When load
    shifts faster than the window refreshes, the history lags.  This
    variant rescales the queuing-delay pmf by

        current_queue_length / mean_observed_queue_implied_length

    approximated as ``(q_now + 1) / (q_hist + 1)`` where ``q_hist`` is the
    window's mean queuing delay divided by the window's mean service time.
    It is **not** part of the paper's algorithm; it exists for the ablation
    that quantifies how much the simple windowed model leaves on the table.
    """

    def _build_pmf(self, record: ReplicaRecord) -> DiscretePMF:
        service_pmf = DiscretePMF.from_samples(
            record.service_times.values(), self.bin_width_ms
        )
        queue_pmf = DiscretePMF.from_samples(
            record.queue_delays.values(), self.bin_width_ms
        )
        mean_service = service_pmf.mean()
        if mean_service > 0:
            implied_hist_depth = queue_pmf.mean() / mean_service
            factor = (record.queue_length + 1.0) / (implied_hist_depth + 1.0)
            queue_pmf = queue_pmf.scale(factor)
        assert record.gateway_delay_ms is not None
        return service_pmf.convolve(queue_pmf).shift(record.gateway_delay_ms)
