"""Online response-time estimation (paper §5.3.1).

Builds, per replica, the pmf of the response time

    R_i = S_i + W_i + T_i

from the repository's sliding windows: the pmfs of ``S_i`` (service time)
and ``W_i`` (queuing delay) are the relative frequencies of the window
contents, and ``T_i`` (two-way gateway delay) enters as its most recent
measured value.  ``F_{R_i}(t)`` is then read off the convolved pmf.

Computing the distribution is ~90 % of the selection cost the paper
reports in Fig. 3, so the estimator runs an *incremental pipeline*
(docs/PERFORMANCE.md describes it end to end):

* each sliding window caches its own empirical pmf, rebuilt from
  incrementally maintained bin counts only when the window's version
  moved (``SlidingWindow.pmf``);
* the ``S_i ⊛ W_i`` convolution is cached per replica, keyed on the pair
  of window versions — the expensive O(l²) outer product only reruns
  when a performance update arrived;
* the final response-time pmf is cached per replica, keyed on
  ``(S-version, W-version, T_i, bin_width)`` — a gateway-delay update
  alone re-shifts the cached convolution instead of rebuilding it;
* :meth:`batch_probability_by` evaluates ``F_{R_i}(t)`` for *all*
  replicas in one vectorized pass over a padded (values, cumulative)
  matrix that is itself cached while every per-replica pmf is unchanged.

With unchanged windows, a full selection therefore costs dictionary
lookups plus one vectorized comparison — the measured Fig. 3 ``δ``
collapses, which directly loosens the ``t − δ`` compensation of
Algorithm 1 (§5.3.3).  Construct with ``incremental=False`` to restore
the paper's rebuild-every-request behaviour (the benchmarks use it as
the uncached baseline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .distribution import DiscretePMF, batch_convolve
from .repository import InformationRepository, ReplicaRecord, SlidingWindow

__all__ = ["ResponseTimeEstimator", "QueueScaledEstimator"]


class ResponseTimeEstimator:
    """Estimates ``F_{R_i}(t)`` for the replicas in a repository.

    Parameters
    ----------
    repository:
        The gateway information repository to read measurements from.
    bin_width_ms:
        Quantization grid for the empirical pmfs.  The paper convolves raw
        measured values; a 1 ms grid keeps the convolution support bounded
        while staying well below the deadline scales of interest.
    incremental:
        When ``True`` (default) the versioned-window cache pipeline is
        active.  ``False`` rebuilds every pmf from the raw window samples
        on every (non-memoized) call — the paper's original cost model,
        kept for the Fig. 3 uncached baseline and for the property tests
        that check the cached path against a from-scratch rebuild.
    """

    def __init__(
        self,
        repository: InformationRepository,
        bin_width_ms: float = 1.0,
        incremental: bool = True,
    ) -> None:
        if bin_width_ms <= 0:
            raise ValueError(f"bin_width_ms must be > 0, got {bin_width_ms}")
        self.repository = repository
        self.bin_width_ms = float(bin_width_ms)
        self.incremental = bool(incremental)
        # replica -> (cache key, final response-time pmf).
        self._cache: Dict[str, Tuple[tuple, DiscretePMF]] = {}
        # replica -> ((S version, W version), S ⊛ W pmf).
        self._conv_cache: Dict[str, Tuple[Tuple[int, int], DiscretePMF]] = {}
        # (pmf tuple, padded values, cumulative, tolerances, sizes) for the
        # batched F(t) evaluation; valid while every pmf object is reused.
        self._batch_cache: Optional[tuple] = None
        # (replica tuple, repository version, pmf list): skips the whole
        # per-replica cache walk when nothing in the repository moved —
        # the fleet-scale steady state costs one integer compare.
        self._pmf_list_cache: Optional[tuple] = None
        self.cache_hits = 0
        self.cache_misses = 0

    # -- model construction ----------------------------------------------------
    def response_time_pmf(self, replica: str) -> Optional[DiscretePMF]:
        """The pmf of ``R_i`` for ``replica``; ``None`` without history."""
        record = self.repository.record(replica)
        if not record.has_history:
            return None
        key = self._cache_key(record)
        cached = self._cache.get(replica)
        if cached is not None and cached[0] == key:
            self.cache_hits += 1
            return cached[1]
        self.cache_misses += 1
        pmf = self._build_pmf(record)
        self._cache[replica] = (key, pmf)
        return pmf

    def _cache_key(self, record: ReplicaRecord) -> tuple:
        """Everything the final pmf depends on (docs/PERFORMANCE.md).

        A window version bump (the repository's push) changes the key and
        therefore invalidates; so does a new ``T_i`` value — but a ``T_i``
        change alone leaves the ``S ⊛ W`` convolution cache intact.
        """
        if record.gateway_delays is not None:
            t_key: object = ("window", record.gateway_delays.version)
        else:
            t_key = ("point", record.gateway_delay_ms)
        return (
            record.service_times.version,
            record.queue_delays.version,
            t_key,
            self.bin_width_ms,
        )

    def _window_pmf(self, window: SlidingWindow) -> DiscretePMF:
        """One window's empirical pmf, via the incremental path when on."""
        if self.incremental:
            return window.pmf(self.bin_width_ms)
        return DiscretePMF.from_samples(window.values(), self.bin_width_ms)

    def _base_pmf(self, record: ReplicaRecord) -> DiscretePMF:
        """``S_i ⊛ W_i``, cached on the pair of window versions."""
        key = (record.service_times.version, record.queue_delays.version)
        cached = self._conv_cache.get(record.name)
        if cached is not None and cached[0] == key:
            return cached[1]
        conv = self._window_pmf(record.service_times).convolve(
            self._window_pmf(record.queue_delays)
        )
        if self.incremental:
            self._conv_cache[record.name] = (key, conv)
        return conv

    def _refresh_convolutions(self, replicas: Sequence[str]) -> None:
        """Rebuild every stale ``S_i ⊛ W_i`` in one padded FFT pass.

        The per-replica convolution cache is consulted first; replicas
        whose window versions moved since the cached entry contribute one
        row each to :func:`repro.core.distribution.batch_convolve`, so a
        fleet-wide measurement burst costs one batched array kernel
        instead of ``n`` independent ``O(L²)`` products.  Rows the dense
        kernel declines (off-grid, over budget) simply stay stale and are
        rebuilt by the scalar path on first use — results are identical
        either way.
        """
        stale: List[Tuple[str, Tuple[int, int], DiscretePMF, DiscretePMF]] = []
        for name in replicas:
            if name not in self.repository:
                continue
            record = self.repository.record(name)
            if not record.has_history:
                continue
            key = (record.service_times.version, record.queue_delays.version)
            cached = self._conv_cache.get(name)
            if cached is not None and cached[0] == key:
                continue
            stale.append(
                (
                    name,
                    key,
                    self._window_pmf(record.service_times),
                    self._window_pmf(record.queue_delays),
                )
            )
        if len(stale) < 2:
            return
        convolved = batch_convolve([(s, w) for _, _, s, w in stale])
        for (name, key, _, _), pmf in zip(stale, convolved):
            if pmf is not None:
                self._conv_cache[name] = (key, pmf)

    def _build_pmf(self, record: ReplicaRecord) -> DiscretePMF:
        base = self._base_pmf(record)
        # §5.3.1 extension: with a gateway-delay window, T_i enters as a
        # distribution (its own empirical pmf) rather than a point shift.
        if record.gateway_delays is not None and len(record.gateway_delays):
            return base.convolve(self._window_pmf(record.gateway_delays))
        assert record.gateway_delay_ms is not None  # guarded by has_history
        return base.shift(record.gateway_delay_ms)

    # -- queries -----------------------------------------------------------
    def probability_by(self, replica: str, deadline_ms: float) -> Optional[float]:
        """``F_{R_i}(deadline)`` — probability the reply arrives in time.

        Returns ``None`` when the replica has no usable history (the
        caller then falls back to the paper's select-all bootstrap).
        """
        pmf = self.response_time_pmf(replica)
        if pmf is None:
            return None
        if deadline_ms <= 0:
            return 0.0
        return pmf.cdf(deadline_ms)

    def probabilities_by(self, deadline_ms: float) -> Dict[str, Optional[float]]:
        """``F_{R_i}(deadline)`` for every tracked replica."""
        replicas = self.repository.replicas()
        return dict(
            zip(replicas, self.batch_probability_by(replicas, deadline_ms))
        )

    def batch_probability_by(
        self, replicas: Sequence[str], deadline_ms: float
    ) -> List[Optional[float]]:
        """``F_{R_i}(deadline)`` for ``replicas`` in one vectorized pass.

        Per-replica entries are ``None`` without history, exactly as
        :meth:`probability_by`.  When every pmf object is unchanged since
        the previous call, evaluation is a single comparison over a cached
        padded matrix — the hot path of ``DynamicSelectionPolicy``.  When
        windows *did* move, the stale ``S ⊛ W`` convolutions are first
        refreshed in one batched FFT pass (:meth:`_refresh_convolutions`).
        """
        pmfs = self._batch_pmfs(replicas)
        results: List[Optional[float]] = [None] * len(pmfs)
        if deadline_ms <= 0:
            for index, pmf in enumerate(pmfs):
                if pmf is not None:
                    results[index] = 0.0
            return results
        known = [(index, pmf) for index, pmf in enumerate(pmfs) if pmf is not None]
        if not known:
            return results
        probabilities = self._batch_cdf(
            tuple(pmf for _, pmf in known), float(deadline_ms)
        )
        for (index, _), probability in zip(known, probabilities):
            results[index] = probability
        return results

    def _batch_pmfs(
        self, replicas: Sequence[str]
    ) -> List[Optional[DiscretePMF]]:
        """Per-replica response-time pmfs, version-gated for the fleet.

        The steady state at fleet scale must not pay an O(n) python walk
        over per-replica cache keys per request, so the full pmf list is
        cached against ``repository.version`` — a single integer that
        moves on *any* record or membership mutation routed through the
        repository/record APIs (the only mutation paths production code
        uses; mutating a window object directly bypasses the gate).
        """
        version = getattr(self.repository, "version", None)
        replicas_key = tuple(replicas)
        if self.incremental and version is not None:
            cached = self._pmf_list_cache
            if (
                cached is not None
                and cached[1] == version
                and cached[0] == replicas_key
            ):
                return cached[2]
        if self.incremental and len(replicas) > 1:
            self._refresh_convolutions(replicas)
        pmfs = [self.response_time_pmf(replica) for replica in replicas]
        if self.incremental and version is not None:
            self._pmf_list_cache = (replicas_key, version, pmfs)
        return pmfs

    def _batch_cdf(
        self, pmfs: Tuple[DiscretePMF, ...], t: float
    ) -> List[float]:
        cache = self._batch_cache
        if (
            cache is None
            or len(cache[0]) != len(pmfs)
            or any(a is not b for a, b in zip(cache[0], pmfs))
        ):
            count = len(pmfs)
            width = max(pmf.support_size for pmf in pmfs)
            values = np.full((count, width), np.inf)
            cumulative = np.ones((count, width))
            tolerances = np.empty(count)
            sizes = np.empty(count, dtype=np.intp)
            for row, pmf in enumerate(pmfs):
                size = pmf.support_size
                values[row, :size] = pmf.values
                cumulative[row, :size] = pmf.cumulative_probs()
                tolerances[row] = pmf.dust_tolerance()
                sizes[row] = size
            cache = (pmfs, values, cumulative, tolerances, sizes)
            self._batch_cache = cache
        _, values, cumulative, tolerances, sizes = cache
        counts = (values <= t + tolerances[:, None]).sum(axis=1)
        indices = np.clip(counts - 1, 0, values.shape[1] - 1)
        probabilities = np.clip(
            cumulative[np.arange(sizes.size), indices], 0.0, 1.0
        )
        # Mirror the scalar cdf's exact end points.
        probabilities[counts == 0] = 0.0
        probabilities[counts >= sizes] = 1.0
        return probabilities.tolist()

    def expected_response_time(self, replica: str) -> Optional[float]:
        """Mean of the modeled response time (used by mean-based baselines)."""
        pmf = self.response_time_pmf(replica)
        if pmf is None:
            return None
        return pmf.mean()

    # -- cache control -------------------------------------------------------
    def invalidate(self, replica: Optional[str] = None) -> None:
        """Drop memoized pmfs (all replicas when ``replica`` is None)."""
        if replica is None:
            self._cache.clear()
            self._conv_cache.clear()
        else:
            self._cache.pop(replica, None)
            self._conv_cache.pop(replica, None)
        self._batch_cache = None
        self._pmf_list_cache = None

    def prune(self, keep: Sequence[str]) -> None:
        """Drop cache entries for replicas not in ``keep`` (view changes)."""
        keep_set = set(keep)
        for name in list(self._cache):
            if name not in keep_set:
                del self._cache[name]
        for name in list(self._conv_cache):
            if name not in keep_set:
                del self._conv_cache[name]
        self._batch_cache = None
        self._pmf_list_cache = None

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters of the final-pmf cache (for benchmarks)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
        }

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} bin={self.bin_width_ms}ms "
            f"replicas={len(self.repository)} incremental={self.incremental}>"
        )


class QueueScaledEstimator(ResponseTimeEstimator):
    """Extension: scale the queuing-delay pmf by the current queue depth.

    The paper's repository stores the replica's *current* queue length but
    the base model uses only the windowed queuing-delay history.  When load
    shifts faster than the window refreshes, the history lags.  This
    variant rescales the queuing-delay pmf by

        current_queue_length / mean_observed_queue_implied_length

    approximated as ``(q_now + 1) / (q_hist + 1)`` where ``q_hist`` is the
    window's mean queuing delay divided by the window's mean service time.
    It is **not** part of the paper's algorithm; it exists for the ablation
    that quantifies how much the simple windowed model leaves on the table.
    """

    def _cache_key(self, record: ReplicaRecord) -> tuple:
        # The scaled pmf also depends on the live queue depth, which can
        # change without a window version bump (e.g. probe replies).
        return super()._cache_key(record) + (record.queue_length,)

    def _refresh_convolutions(self, replicas: Sequence[str]) -> None:
        # The queue-scaled build path rescales W_i before convolving, so
        # the plain S ⊛ W convolution cache is never consulted — batching
        # it would be pure wasted work.
        return None

    def _build_pmf(self, record: ReplicaRecord) -> DiscretePMF:
        service_pmf = self._window_pmf(record.service_times)
        queue_pmf = self._window_pmf(record.queue_delays)
        mean_service = service_pmf.mean()
        if mean_service > 0:
            implied_hist_depth = queue_pmf.mean() / mean_service
            factor = (record.queue_length + 1.0) / (implied_hist_depth + 1.0)
            queue_pmf = queue_pmf.scale(factor)
        assert record.gateway_delay_ms is not None
        return service_pmf.convolve(queue_pmf).shift(record.gateway_delay_ms)
