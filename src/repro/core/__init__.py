"""The paper's contribution: online model + dynamic replica selection.

Layers (bottom up): :class:`DiscretePMF` (empirical distributions and
their convolution), :class:`InformationRepository` (per-handler sliding
windows of performance measurements), :class:`ResponseTimeEstimator`
(Equation 2: ``R = S + W + T``), Equation 1 helpers in
:mod:`repro.core.model`, and :func:`select_replicas` /
:class:`DynamicSelectionPolicy` (Algorithm 1 with the bootstrap and
overhead-compensation rules).  Baseline policies from related work live in
:mod:`repro.core.baselines`.
"""

from .baselines import (
    AllReplicasPolicy,
    FixedRedundancyPolicy,
    LowestMeanPolicy,
    NearestPolicy,
    ProbeEstimatePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SingleFastestPolicy,
)
from .distribution import DiscretePMF, quantize
from .estimator import QueueScaledEstimator, ResponseTimeEstimator
from .model import (
    min_replicas_needed,
    subset_timeliness_from_map,
    subset_timeliness_probability,
)
from .negotiation import AdaptiveQoSController
from .qos import QoSSpec, QoSViolationCallback, TimingFailureStats
from .repository import InformationRepository, ReplicaRecord, SlidingWindow
from .selection import (
    DynamicSelectionPolicy,
    GovernorMeta,
    HealthView,
    ReplicaProbability,
    SelectionContext,
    SelectionDecision,
    SelectionMeta,
    SelectionPolicy,
    SelectionResult,
    select_replicas,
)

__all__ = [
    "DiscretePMF",
    "quantize",
    "InformationRepository",
    "ReplicaRecord",
    "SlidingWindow",
    "ResponseTimeEstimator",
    "QueueScaledEstimator",
    "subset_timeliness_probability",
    "subset_timeliness_from_map",
    "min_replicas_needed",
    "QoSSpec",
    "QoSViolationCallback",
    "TimingFailureStats",
    "AdaptiveQoSController",
    "select_replicas",
    "SelectionResult",
    "ReplicaProbability",
    "GovernorMeta",
    "SelectionMeta",
    "HealthView",
    "SelectionContext",
    "SelectionDecision",
    "SelectionPolicy",
    "DynamicSelectionPolicy",
    "AllReplicasPolicy",
    "SingleFastestPolicy",
    "FixedRedundancyPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "LowestMeanPolicy",
    "NearestPolicy",
    "ProbeEstimatePolicy",
]
