"""Baseline replica-selection policies from the paper's related work.

Section 1 of the paper surveys selection schemes that "assign a single
replica to each client": nearest-replica by a distance metric
(Heidemann & Visweswaraiah), best historical average response time
(Sayal et al.), and load/delay-monitoring estimators (Fei et al.).  The
active-replication handler of prior AQuA work corresponds to sending to
*all* replicas.  These are implemented here behind the same
:class:`~repro.core.selection.SelectionPolicy` interface so the experiment
harness can compare them head-to-head with the paper's dynamic policy.
"""

from __future__ import annotations

from typing import List, Tuple

from .selection import SelectionContext, SelectionDecision, SelectionPolicy

__all__ = [
    "AllReplicasPolicy",
    "SingleFastestPolicy",
    "FixedRedundancyPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "LowestMeanPolicy",
    "NearestPolicy",
    "ProbeEstimatePolicy",
    "StaticMinResponsePolicy",
]


def _ordered_by_probability(ctx: SelectionContext) -> List[str]:
    """Replicas sorted by decreasing F(t); unknowns rank last (prob −1)."""

    def key(replica: str) -> Tuple[float, str]:
        probability = ctx.estimator.probability_by(replica, ctx.qos.deadline_ms)
        return (-(probability if probability is not None else -1.0), replica)

    return sorted(ctx.replicas, key=key)


class AllReplicasPolicy(SelectionPolicy):
    """Active replication: every request goes to every live replica.

    Maximum fault tolerance, worst scalability — the anchor point of the
    paper's introduction.
    """

    name = "all-replicas"

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        return SelectionDecision(selected=tuple(ctx.replicas))


class SingleFastestPolicy(SelectionPolicy):
    """Send to the one replica most likely to meet the deadline.

    The "choose the best server, no redundancy" family of related work;
    a single crash while servicing loses the request entirely until the
    membership layer notices.
    """

    name = "single-fastest"

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        ordered = _ordered_by_probability(ctx)
        return SelectionDecision(selected=(ordered[0],) if ordered else ())


class FixedRedundancyPolicy(SelectionPolicy):
    """Always send to the ``k`` individually best replicas.

    A static middle ground between single-fastest and all-replicas; the
    ablation experiments use it to show what the *adaptive* redundancy of
    Algorithm 1 buys over any fixed level.
    """

    name = "fixed-k"

    def __init__(self, redundancy: int) -> None:
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.redundancy = int(redundancy)
        self.name = f"fixed-{self.redundancy}"

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        ordered = _ordered_by_probability(ctx)
        return SelectionDecision(selected=tuple(ordered[: self.redundancy]))


class RandomPolicy(SelectionPolicy):
    """Uniformly random subset of size ``k`` — the no-information bound."""

    name = "random"

    def __init__(self, redundancy: int = 1) -> None:
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.redundancy = int(redundancy)
        self.name = f"random-{self.redundancy}"

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        k = min(self.redundancy, len(ctx.replicas))
        if k == 0:
            return SelectionDecision(selected=())
        picked = ctx.rng.choice(len(ctx.replicas), size=k, replace=False)
        return SelectionDecision(
            selected=tuple(ctx.replicas[int(i)] for i in sorted(picked))
        )


class RoundRobinPolicy(SelectionPolicy):
    """Deterministic rotation over the replica list (classic LB baseline)."""

    name = "round-robin"

    def __init__(self, redundancy: int = 1) -> None:
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.redundancy = int(redundancy)
        self._next = 0
        self.name = f"round-robin-{self.redundancy}"

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        replicas = sorted(ctx.replicas)
        if not replicas:
            return SelectionDecision(selected=())
        k = min(self.redundancy, len(replicas))
        start = self._next % len(replicas)
        self._next += k
        picked = [replicas[(start + i) % len(replicas)] for i in range(k)]
        return SelectionDecision(selected=tuple(picked))


class LowestMeanPolicy(SelectionPolicy):
    """Best historical average response time (Sayal et al. style).

    Ranks replicas by the *mean* of the modeled response time instead of
    the deadline-conditional probability — the key difference from the
    paper's policy, and the reason it under-hedges near the deadline.
    """

    name = "lowest-mean"

    def __init__(self, redundancy: int = 1) -> None:
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.redundancy = int(redundancy)
        if self.redundancy != 1:
            self.name = f"lowest-mean-{self.redundancy}"

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        def key(replica: str) -> Tuple[float, str]:
            mean = ctx.estimator.expected_response_time(replica)
            return (mean if mean is not None else float("inf"), replica)

        ordered = sorted(ctx.replicas, key=key)
        return SelectionDecision(selected=tuple(ordered[: self.redundancy]))


class NearestPolicy(SelectionPolicy):
    """Smallest static distance metric (Heidemann-style nearest server)."""

    name = "nearest"

    def __init__(self, redundancy: int = 1) -> None:
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.redundancy = int(redundancy)

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        if ctx.distance is None:
            # Without a topology metric, distance degenerates to name
            # order — deterministic, and documented as such.
            ordered = sorted(ctx.replicas)
        else:
            ordered = sorted(ctx.replicas, key=lambda r: (ctx.distance(r), r))
        return SelectionDecision(selected=tuple(ordered[: self.redundancy]))


class ProbeEstimatePolicy(SelectionPolicy):
    """Load + delay point estimate (Fei et al. style).

    Estimates each replica's next response time as

        T_i + (queue_length + 1) · mean(S_i)

    — the freshest gateway delay plus the work currently queued — and
    picks the smallest.  A *point* estimate: unlike the paper's model it
    ignores the response-time distribution's shape, so it cannot reason
    about the probability of meeting a specific deadline.
    """

    name = "probe-estimate"

    def __init__(self, redundancy: int = 1) -> None:
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.redundancy = int(redundancy)

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        repository = ctx.estimator.repository

        def estimate(replica: str) -> float:
            record = repository.record(replica)
            if not record.has_history:
                return float("inf")
            service_values = record.service_times.values()
            mean_service = sum(service_values) / len(service_values)
            assert record.gateway_delay_ms is not None
            return record.gateway_delay_ms + (record.queue_length + 1) * mean_service

        ordered = sorted(ctx.replicas, key=lambda r: (estimate(r), r))
        return SelectionDecision(selected=tuple(ordered[: self.redundancy]))


class StaticMinResponsePolicy(SelectionPolicy):
    """Rank by the static response-time *floor*; the starvation fallback.

    Estimates each replica's best case as ``T_i + min(S_i window)`` —
    the last measured gateway delay plus the cheapest service time ever
    seen in the window.  Unlike the pmf model this uses no probability
    mass and no queue state, so it stays meaningful when the windows have
    gone stale: network proximity and intrinsic service cost change far
    more slowly than load.  The selection layer's degradation ladder
    (docs/ARCHITECTURE.md §5) delegates here when every usable window is
    older than ``stale_after_ms`` — trusting a static floor beats
    trusting a dead model.  Replicas without history rank last; with no
    data at all the order degenerates to name order (deterministic).
    """

    name = "static-min-response"

    def __init__(self, redundancy: int = 2) -> None:
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.redundancy = int(redundancy)

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        repository = ctx.estimator.repository

        def floor(replica: str) -> float:
            if replica not in repository:
                return float("inf")
            record = repository.record(replica)
            if not record.has_history:
                return float("inf")
            assert record.gateway_delay_ms is not None
            return record.gateway_delay_ms + min(record.service_times.values())

        ordered = sorted(ctx.replicas, key=lambda r: (floor(r), r))
        return SelectionDecision(
            selected=tuple(ordered[: self.redundancy]),
            meta={"policy": self.name},
        )
