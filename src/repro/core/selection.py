"""Algorithm 1 — model-based dynamic replica selection (paper §5.3.2).

``select_replicas`` is a line-by-line transcription of the paper's
Algorithm 1: replicas are sorted by decreasing ``F_{R_i}(t)``; the
best replica ``m0`` is *always* part of the result but deliberately
excluded from the acceptance test, so the rest of the set alone satisfies
the client's probability.  Should any single member of the returned set
crash before responding, the survivors still meet the constraint
(Equation 3 of the paper).  If no such set exists, the complete replica
set ``M`` is returned.

:class:`DynamicSelectionPolicy` wraps the algorithm with the paper's two
operational details: the select-*all* bootstrap for replicas without
performance history (§5.4.1) and the online overhead compensation that
replaces ``t`` by ``t − δ`` (§5.3.3), with ``δ`` the most recently
measured execution time of the selection itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypedDict,
)

import numpy as np
import numpy.typing as npt

from .estimator import ResponseTimeEstimator
from .qos import QoSSpec

__all__ = [
    "ReplicaProbability",
    "SelectionResult",
    "select_replicas",
    "select_replicas_arrays",
    "GovernorMeta",
    "SelectionMeta",
    "HealthView",
    "SelectionContext",
    "SelectionDecision",
    "SelectionPolicy",
    "DynamicSelectionPolicy",
]


class HealthView(Protocol):
    """What selection needs from a health monitor (structural).

    :class:`repro.health.HealthMonitor` satisfies this; tests substitute
    trivial stubs.  Policies that honor a health view exclude quarantined
    replicas and scale ``F_{R_i}(t)`` by the trust discount.
    """

    def is_quarantined(self, name: str) -> bool:
        """Whether ``name`` must receive no client traffic at all."""
        ...

    def discount(self, name: str) -> float:
        """Trust multiplier in ``[0, 1]`` applied to ``F_{R_i}(t)``."""
        ...


class GovernorMeta(TypedDict):
    """The redundancy governor's annotation on a decision it touched."""

    load: float
    cap: int
    available: int
    engaged: bool


class SelectionMeta(TypedDict, total=False):
    """Diagnostics a policy attaches to its decision.

    At runtime this is a plain ``dict`` — policies keep building it with
    dict literals — but the closed key set lets the type checker reject
    typos at both the producer (``meta["botstrap"] = True``) and the
    consumer (``decision.meta.get("probabilties")``).  Every key is
    optional; absence means "not applicable to this decision".
    """

    #: Select-all first contact: no performance history yet (§5.4.1).
    bootstrap: bool
    #: Algorithm 1's Line 15 — no subset covered Pc, full set returned.
    fallback: bool
    #: The governor's cap trimmed the set below Algorithm 1's choice.
    capped: bool
    #: P_X(t) of the set excluding the protected best members.
    crash_safe_probability: float
    #: P_K(t) of the whole selected set.
    full_probability: float
    #: Deadline after §5.3.3 overhead compensation (t − δ).
    effective_deadline_ms: float
    #: Measured δ of this very decision, milliseconds.
    overhead_ms: float
    #: Per-replica F_{R_i}(t − δ) the decision was computed from.
    probabilities: Dict[str, float]
    #: Degradation-ladder rung taken (e.g. ``"stale-model"``).
    degraded: str
    #: The ladder threshold that triggered the stale delegation.
    stale_after_ms: float
    #: Replicas excluded from consideration by the health view.
    quarantined: Tuple[str, ...]
    #: Every replica was quarantined; traffic sent anyway (best effort).
    quarantine_override: bool
    #: Full preference order (retransmission handlers walk it).
    ranking: List[str]
    #: Primary replica of the passive-replication handler.
    primary: str
    #: Name of the (fallback) policy that produced the decision.
    policy: str
    #: QoS class the handler resolved for this request.
    request_class: str
    #: Load index at the moment the admission controller shed.
    shed_load: float
    #: Cap ladder details when a governor wrapped the decision.
    governor: GovernorMeta
    #: The membership view was empty; nothing could be selected.
    no_replicas: bool


@dataclass(frozen=True)
class ReplicaProbability:
    """A replica name with its estimated ``F_{R_i}(t)``."""

    name: str
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of running Algorithm 1.

    Attributes
    ----------
    selected:
        The chosen replica names, best (highest ``F``) first.
    crash_safe_probability:
        ``P_X(t)`` of the selected set *excluding* the protected best
        members — the probability guaranteed to survive the tolerated
        number of crashes.  0.0 when the fallback path was taken and even
        the full set cannot provide the guarantee.
    full_probability:
        ``P_K(t)`` of the whole selected set.
    used_fallback:
        ``True`` when no acceptable subset existed and the complete
        replica set was returned (Line 15 of Algorithm 1).
    capped:
        ``True`` when ``max_size`` trimmed the set below what Algorithm 1
        would have chosen — the probabilities then describe the trimmed
        set, which may sit below ``min_probability`` (the redundancy
        governor's graceful degradation under overload).
    """

    selected: Tuple[str, ...]
    crash_safe_probability: float
    full_probability: float
    used_fallback: bool
    capped: bool = False

    @property
    def redundancy(self) -> int:
        """Number of replicas the request will be sent to."""
        return len(self.selected)


def select_replicas(
    candidates: Sequence[ReplicaProbability],
    min_probability: float,
    crash_tolerance: int = 1,
    max_size: Optional[int] = None,
) -> SelectionResult:
    """Run Algorithm 1 over ``candidates``.

    Parameters
    ----------
    candidates:
        Replicas with their individual timeliness probabilities
        ``F_{R_i}(t)`` (the algorithm's input set ``V``).
    min_probability:
        The client's ``Pc(t)``.
    crash_tolerance:
        Number of simultaneous member crashes the returned set must
        absorb while still meeting ``min_probability``.  The paper's
        Algorithm 1 is the ``crash_tolerance=1`` case; ``0`` disables the
        always-include-the-best rule (pure probability cover), and higher
        values protect the ``k`` best members, following the extension the
        paper sketches at the end of §5.3.2.
    max_size:
        Redundancy cap imposed by the overload governor.  ``None`` (the
        default) runs the paper's unbounded algorithm.  A cap never
        shrinks the set below ``crash_tolerance + 1`` members (the
        protected best plus one survivor — the structural single-crash
        guarantee); when the cap bites, the result carries ``capped=True``
        and its probabilities describe the trimmed set.

    Notes
    -----
    Ties in probability are broken by replica name so selection is
    deterministic for a given input.
    """
    if not candidates:
        raise ValueError("select_replicas needs at least one candidate")
    names = np.array([c.name for c in candidates])
    probabilities = np.array([c.probability for c in candidates])
    return select_replicas_arrays(
        names,
        probabilities,
        min_probability,
        crash_tolerance=crash_tolerance,
        max_size=max_size,
    )


def select_replicas_arrays(
    names: npt.NDArray[np.str_],
    probabilities: npt.NDArray[np.float64],
    min_probability: float,
    crash_tolerance: int = 1,
    max_size: Optional[int] = None,
) -> SelectionResult:
    """Algorithm 1 straight over parallel ``(names, probabilities)`` arrays.

    The allocation-free fast path behind :func:`select_replicas`: at
    fleet scale (ISSUE 7 benchmarks 1024 replicas) building one
    :class:`ReplicaProbability` per candidate per request costs more
    than the algorithm itself, so callers that already hold arrays —
    the dynamic policy fed by the estimator's batch pass, the scale
    benchmark — skip the object layer entirely.  Semantics, validation
    and tie-breaking are identical to :func:`select_replicas`.
    """
    names = np.asarray(names)
    probabilities = np.asarray(probabilities, dtype=float)
    if names.size == 0:
        raise ValueError("select_replicas needs at least one candidate")
    if probabilities.size and (
        float(probabilities.min()) < 0.0 or float(probabilities.max()) > 1.0
    ):
        raise ValueError("probabilities must be in [0, 1]")
    if not 0.0 <= min_probability <= 1.0:
        raise ValueError(
            f"min_probability must be in [0, 1], got {min_probability}"
        )
    if crash_tolerance < 0:
        raise ValueError(f"crash_tolerance must be >= 0, got {crash_tolerance}")
    if max_size is not None and max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    total = int(names.size)

    # Line 3: sort in decreasing order of F_{R_i}(t); ties by name.  The
    # whole algorithm runs vectorized: one lexsort, one cumulative product
    # over the miss probabilities, one threshold search.
    order = np.lexsort((names, -probabilities))
    names = names[order]
    # Running product of (1 - F) in selection order; prefix k of it is the
    # miss probability of the k best replicas.
    miss = np.cumprod(1.0 - probabilities[order])

    # Line 4 (generalized): always protect the best `crash_tolerance`
    # replicas; they join the result but not the acceptance test.
    protected_count = min(crash_tolerance, total)

    # Overload-governor cap, floored at the structural single-crash
    # guarantee (the protected best plus one survivor).
    cap = total
    if max_size is not None:
        floor = min(crash_tolerance + 1, total)
        cap = min(max(max_size, floor), total)

    # Lines 6-14: the candidate set X is the smallest prefix of the
    # remainder whose combined probability covers Pc.
    if protected_count:
        remainder_miss = np.cumprod(
            1.0 - probabilities[order][protected_count:]
        )
    else:
        remainder_miss = miss
    covered = 1.0 - remainder_miss
    hits = np.nonzero(covered >= min_probability)[0]
    if hits.size:
        cut = int(hits[0])
        selected_count = protected_count + cut + 1
        capped = selected_count > cap
        if capped:
            selected_count = cap
            cut = selected_count - protected_count - 1
        return SelectionResult(
            selected=tuple(names[:selected_count].tolist()),
            crash_safe_probability=float(covered[cut]),
            full_probability=1.0 - float(miss[selected_count - 1]),
            used_fallback=False,
            capped=capped,
        )

    # Line 15: no acceptable subset — return the complete set M (trimmed
    # to the governor's cap when one is in force).
    capped = cap < total
    remainder_size = cap - protected_count
    crash_safe = (
        float(covered[remainder_size - 1])
        if covered.size and remainder_size >= 1
        else 0.0
    )
    return SelectionResult(
        selected=tuple(names[:cap].tolist()),
        crash_safe_probability=(
            crash_safe if crash_safe >= min_probability else 0.0
        ),
        full_probability=1.0 - float(miss[cap - 1]),
        used_fallback=True,
        capped=capped,
    )


# ---------------------------------------------------------------------------
# Policy layer: the pluggable interface the gateway handler drives.
# ---------------------------------------------------------------------------


@dataclass
class SelectionContext:
    """Everything a selection policy may consult for one request.

    Attributes
    ----------
    replicas:
        Live replicas of the service, per the current group view.
    estimator:
        Response-time estimator over the handler's repository.
    qos:
        The client's QoS specification.
    now_ms:
        Current simulated time.
    rng:
        Random generator for stochastic policies.
    distance:
        Optional static distance metric (for nearest-replica baselines).
    health:
        Optional health view (any :class:`HealthView`, e.g.
        :class:`repro.health.HealthMonitor`).  Policies that honor it
        exclude quarantined replicas and scale ``F_{R_i}(t)`` by the
        trust discount.
    max_redundancy:
        Optional redundancy cap set by the overload governor
        (:class:`repro.overload.GovernedSelectionPolicy`).  Policies that
        honor it never address more than this many replicas; Algorithm 1
        enforces it inside :func:`select_replicas` so the reported
        probabilities describe the capped set.
    """

    replicas: List[str]
    estimator: ResponseTimeEstimator
    qos: QoSSpec
    now_ms: float
    rng: np.random.Generator
    distance: Optional[Callable[[str], float]] = None
    health: Optional[HealthView] = None
    max_redundancy: Optional[int] = None


@dataclass(frozen=True)
class SelectionDecision:
    """A policy's verdict for one request."""

    selected: Tuple[str, ...]
    # Diagnostics: probabilities, fallback flags, overhead, ... — see
    # the SelectionMeta catalog for the closed key set.
    meta: SelectionMeta = field(default_factory=lambda: SelectionMeta())

    @property
    def redundancy(self) -> int:
        """Number of replicas addressed."""
        return len(self.selected)


class SelectionPolicy:
    """Interface implemented by every replica-selection strategy."""

    #: Short name used in experiment tables.
    name = "abstract"

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        """Choose the replicas that will service this request."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class DynamicSelectionPolicy(SelectionPolicy):
    """The paper's policy: probabilistic model + Algorithm 1.

    Parameters
    ----------
    crash_tolerance:
        Member crashes the selected set must absorb (paper: 1).
    compensate_overhead:
        When ``True`` (paper §5.3.3), selection evaluates
        ``F_{R_i}(t − δ)`` with ``δ`` the most recently *measured*
        execution time of this policy's own ``decide``.
    fixed_overhead_ms:
        Overrides the measured ``δ`` with a constant — useful for
        deterministic tests and for simulating slower selection hosts.
    stale_after_ms:
        Degradation-ladder threshold: when *every* usable replica record
        is older than this, the pmf model is starved (a dead model keeps
        reporting its last — possibly excellent — probabilities forever)
        and the decision is delegated to ``stale_fallback`` instead.
        ``None`` (the default) disables the ladder.
    stale_fallback:
        Policy consulted when the model is stale; defaults to the static
        min-response baseline
        (:class:`repro.core.baselines.StaticMinResponsePolicy`).
    """

    name = "dynamic"

    def __init__(
        self,
        crash_tolerance: int = 1,
        compensate_overhead: bool = True,
        fixed_overhead_ms: Optional[float] = None,
        stale_after_ms: Optional[float] = None,
        stale_fallback: Optional[SelectionPolicy] = None,
    ) -> None:
        if fixed_overhead_ms is not None and fixed_overhead_ms < 0:
            raise ValueError(
                f"fixed_overhead_ms must be >= 0, got {fixed_overhead_ms}"
            )
        if stale_after_ms is not None and stale_after_ms <= 0:
            raise ValueError(
                f"stale_after_ms must be > 0, got {stale_after_ms}"
            )
        self.crash_tolerance = int(crash_tolerance)
        self.compensate_overhead = bool(compensate_overhead)
        self.fixed_overhead_ms = fixed_overhead_ms
        self.stale_after_ms = stale_after_ms
        if stale_fallback is None and stale_after_ms is not None:
            # Local import: baselines imports this module for the policy
            # interface, so the default fallback must resolve lazily.
            from .baselines import StaticMinResponsePolicy

            stale_fallback = StaticMinResponsePolicy()
        self.stale_fallback = stale_fallback
        #: δ from the previous execution, milliseconds (paper measures it
        #: "each time the selection algorithm is executed").
        self.last_overhead_ms = 0.0

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        started = time.perf_counter()

        # Health, rung 0 of the degradation ladder: quarantined replicas
        # receive no client traffic.  Should *every* live replica be
        # quarantined, the guarantee is unattainable either way — keep
        # the full set (best effort) and flag the override so the handler
        # exempts this request from the no-traffic-to-quarantined audit.
        replicas = list(ctx.replicas)
        quarantined: Tuple[str, ...] = ()
        quarantine_override = False
        if ctx.health is not None and replicas:
            quarantined = tuple(
                r for r in replicas if ctx.health.is_quarantined(r)
            )
            if quarantined:
                active = [r for r in replicas if r not in set(quarantined)]
                if active:
                    replicas = active
                else:
                    quarantine_override = True

        def annotate(meta: SelectionMeta) -> SelectionMeta:
            if quarantined:
                meta["quarantined"] = quarantined
                meta["quarantine_override"] = quarantine_override
            return meta

        # Bootstrap (paper §5.4.1): with no performance data for some
        # replica there is no model for it; the first access selects all
        # (non-quarantined) replicas so that every one starts publishing
        # updates.
        deadline = ctx.qos.deadline_ms
        if self.compensate_overhead:
            delta = (
                self.fixed_overhead_ms
                if self.fixed_overhead_ms is not None
                else self.last_overhead_ms
            )
            deadline = max(0.0, deadline - delta)
        # One batched pass over all replicas where the estimator supports
        # it (cache-hot requests then cost a single vectorized compare);
        # per-replica queries otherwise.
        batch = getattr(ctx.estimator, "batch_probability_by", None)
        if batch is not None and replicas:
            probabilities = batch(replicas, deadline)
        else:
            probabilities = [
                ctx.estimator.probability_by(replica, deadline)
                for replica in replicas
            ]
        missing_history = any(p is None for p in probabilities)

        cap = ctx.max_redundancy
        if missing_history or not replicas:
            selected = tuple(replicas)
            if cap is not None:
                # Even the select-all bootstrap respects the governor:
                # under pressure, seeding the model must not amplify load.
                selected = selected[: max(cap, 1)]
            self.last_overhead_ms = (time.perf_counter() - started) * 1000.0
            return SelectionDecision(
                selected=selected,
                meta=annotate({"bootstrap": True, "fallback": False}),
            )

        # Rung 2: every usable record is stale — the model is starved
        # (no updates can arrive from replicas nobody hears from), so its
        # probabilities describe the past, not the present.  Delegate to
        # the static fallback rather than trusting a dead model.
        if self.stale_after_ms is not None:
            repository = getattr(ctx.estimator, "repository", None)
            if repository is not None and all(
                repository.staleness(ctx.now_ms, name) > self.stale_after_ms
                for name in replicas
            ):
                fallback_ctx = replace(ctx, replicas=replicas)
                delegated = self.stale_fallback.decide(fallback_ctx)
                if cap is not None:
                    delegated = SelectionDecision(
                        selected=delegated.selected[: max(cap, 1)],
                        meta=delegated.meta,
                    )
                self.last_overhead_ms = (
                    time.perf_counter() - started
                ) * 1000.0
                meta: SelectionMeta = {
                    **delegated.meta,
                    "degraded": "stale-model",
                    "stale_after_ms": self.stale_after_ms,
                    "bootstrap": False,
                    "fallback": False,
                }
                return SelectionDecision(
                    selected=delegated.selected, meta=annotate(meta)
                )

        # Health-discounted F_{R_i}(t): suspected/probation replicas keep
        # competing, but with their probability scaled by the monitor's
        # trust discount.  From here down the decision stays in parallel
        # arrays — no per-replica ReplicaProbability objects on the hot
        # path (that allocation dominated at fleet scale; see
        # docs/PERFORMANCE.md §6).
        names = np.asarray(replicas)
        probs = np.asarray(probabilities, dtype=float)
        if ctx.health is not None:
            probs = probs * np.asarray(
                [ctx.health.discount(name) for name in replicas], dtype=float
            )

        result = select_replicas_arrays(
            names,
            probs,
            ctx.qos.min_probability,
            crash_tolerance=self.crash_tolerance,
            max_size=cap,
        )
        self.last_overhead_ms = (time.perf_counter() - started) * 1000.0
        return SelectionDecision(
            selected=result.selected,
            meta=annotate(
                {
                    "bootstrap": False,
                    "fallback": result.used_fallback,
                    "capped": result.capped,
                    "crash_safe_probability": result.crash_safe_probability,
                    "full_probability": result.full_probability,
                    "effective_deadline_ms": deadline,
                    "overhead_ms": self.last_overhead_ms,
                    "probabilities": dict(zip(replicas, probs.tolist())),
                }
            ),
        )
