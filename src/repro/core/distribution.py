"""Empirical discrete distributions and their convolution.

The heart of the paper's online model (§5.3.1): the pmfs of the service
time ``S_i`` and queuing delay ``W_i`` are estimated from the relative
frequency of the values in a sliding window, and the response-time pmf is
their *discrete convolution* shifted by the most recent gateway-to-gateway
delay ``T_i``:

    R_i = S_i + W_i + T_i          (Equation 2)

Continuous measurements are quantized onto a bin grid before counting so
the convolution support stays bounded (``O(l²)`` points for window size
``l``), which is also what makes the Fig. 3 overhead curve meaningful.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["DiscretePMF", "quantize"]

# Sums of bin-aligned values accumulate float dust; keys are rounded to
# this many decimals when aggregating convolution results.
_KEY_DECIMALS = 9


def quantize(value: float, bin_width: float) -> float:
    """Round ``value`` to the nearest multiple of ``bin_width``."""
    if bin_width <= 0:
        raise ValueError(f"bin_width must be > 0, got {bin_width}")
    return round(round(value / bin_width) * bin_width, _KEY_DECIMALS)


class DiscretePMF:
    """A probability mass function over a finite set of float values.

    Instances are immutable; all operations return new pmfs.  Values are
    kept sorted, probabilities sum to 1 (within float tolerance).
    """

    __slots__ = ("_values", "_probs")

    def __init__(self, values: Sequence[float], probs: Sequence[float]):
        if len(values) != len(probs):
            raise ValueError("values and probs must have equal length")
        if len(values) == 0:
            raise ValueError("a pmf needs at least one atom")
        values_arr = np.asarray(values, dtype=float)
        probs_arr = np.asarray(probs, dtype=float)
        if np.any(probs_arr < -1e-12):
            raise ValueError("probabilities must be non-negative")
        total = float(probs_arr.sum())
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-6):
            raise ValueError(f"probabilities must sum to 1, got {total}")
        order = np.argsort(values_arr)
        self._values = values_arr[order]
        self._probs = np.maximum(probs_arr[order], 0.0)
        # Renormalize away any float dust introduced by clipping.
        self._probs = self._probs / self._probs.sum()

    # -- constructors ------------------------------------------------------
    @classmethod
    def degenerate(cls, value: float) -> "DiscretePMF":
        """The pmf of a constant."""
        return cls([float(value)], [1.0])

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], bin_width: float = 1.0
    ) -> "DiscretePMF":
        """Relative-frequency pmf of ``samples`` on a ``bin_width`` grid.

        This is exactly the paper's estimator: "we first compute the
        probability mass function of S_i and W_i based on the relative
        frequency of their values recorded in the sliding window".
        """
        if len(samples) == 0:
            raise ValueError("cannot build a pmf from zero samples")
        counts: Dict[float, int] = {}
        for sample in samples:
            key = quantize(float(sample), bin_width)
            counts[key] = counts.get(key, 0) + 1
        total = float(len(samples))
        values = sorted(counts)
        probs = [counts[v] / total for v in values]
        return cls(values, probs)

    # -- accessors ----------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Atom locations, sorted ascending (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def probs(self) -> np.ndarray:
        """Atom probabilities aligned with :attr:`values` (read-only)."""
        view = self._probs.view()
        view.flags.writeable = False
        return view

    @property
    def support_size(self) -> int:
        """Number of atoms."""
        return int(self._values.size)

    def items(self) -> List[Tuple[float, float]]:
        """``(value, probability)`` pairs, ascending by value."""
        return list(zip(self._values.tolist(), self._probs.tolist()))

    # -- statistics ---------------------------------------------------------
    def mean(self) -> float:
        """Expected value."""
        return float(np.dot(self._values, self._probs))

    def variance(self) -> float:
        """Variance."""
        mu = self.mean()
        return float(np.dot((self._values - mu) ** 2, self._probs))

    def cdf(self, t: float) -> float:
        """``P(X <= t)`` — the distribution function ``F(t)``.

        A small tolerance absorbs bin-grid float dust so that
        ``cdf(value)`` includes the atom at ``value``; the result is
        clamped to [0, 1] against summation roundoff.
        """
        if t >= self._values[-1] - 1e-9:
            return 1.0  # at or beyond the largest atom: certain
        total = float(self._probs[self._values <= t + 1e-9].sum())
        return min(1.0, max(0.0, total))

    def survival(self, t: float) -> float:
        """``P(X > t) = 1 − F(t)``."""
        return max(0.0, 1.0 - self.cdf(t))

    def quantile(self, q: float) -> float:
        """Smallest value ``v`` with ``F(v) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must be in [0, 1], got {q}")
        cumulative = np.cumsum(self._probs)
        index = int(np.searchsorted(cumulative, q - 1e-12))
        index = min(index, self._values.size - 1)
        return float(self._values[index])

    def min(self) -> float:
        """Smallest atom."""
        return float(self._values[0])

    def max(self) -> float:
        """Largest atom."""
        return float(self._values[-1])

    # -- algebra ------------------------------------------------------------
    def shift(self, delta: float) -> "DiscretePMF":
        """The pmf of ``X + delta`` (adding a constant, e.g. ``T_i``)."""
        values = np.round(self._values + float(delta), _KEY_DECIMALS)
        return DiscretePMF(values, self._probs)

    def scale(self, factor: float) -> "DiscretePMF":
        """The pmf of ``factor · X`` (used by queue-scaling extensions)."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        if factor == 0:
            return DiscretePMF.degenerate(0.0)
        values = np.round(self._values * float(factor), _KEY_DECIMALS)
        # Scaling cannot merge distinct atoms (it is injective for f>0),
        # so values stay unique.
        return DiscretePMF(values, self._probs)

    def convolve(self, other: "DiscretePMF") -> "DiscretePMF":
        """The pmf of the sum of two independent variables.

        All pairwise value sums are formed and equal sums aggregated —
        the discrete convolution of §5.3.1.
        """
        sums = np.add.outer(self._values, other._values).ravel()
        weights = np.multiply.outer(self._probs, other._probs).ravel()
        keys = np.round(sums, _KEY_DECIMALS)
        unique, inverse = np.unique(keys, return_inverse=True)
        probs = np.bincount(inverse, weights=weights)
        return DiscretePMF(unique, probs)

    def __add__(self, other: "DiscretePMF") -> "DiscretePMF":
        if not isinstance(other, DiscretePMF):
            return NotImplemented
        return self.convolve(other)

    # -- comparison ----------------------------------------------------------
    def allclose(self, other: "DiscretePMF", tol: float = 1e-9) -> bool:
        """Structural equality within ``tol``."""
        return (
            self.support_size == other.support_size
            and bool(np.allclose(self._values, other._values, atol=tol))
            and bool(np.allclose(self._probs, other._probs, atol=tol))
        )

    def __repr__(self) -> str:
        return (
            f"<DiscretePMF atoms={self.support_size} "
            f"mean={self.mean():.3f} range=[{self.min():.3f}, {self.max():.3f}]>"
        )
