"""Empirical discrete distributions and their convolution.

The heart of the paper's online model (§5.3.1): the pmfs of the service
time ``S_i`` and queuing delay ``W_i`` are estimated from the relative
frequency of the values in a sliding window, and the response-time pmf is
their *discrete convolution* shifted by the most recent gateway-to-gateway
delay ``T_i``:

    R_i = S_i + W_i + T_i          (Equation 2)

Continuous measurements are quantized onto a bin grid before counting so
the convolution support stays bounded (``O(l²)`` points for window size
``l``), which is also what makes the Fig. 3 overhead curve meaningful.

Two pieces serve the incremental estimator pipeline (see
docs/PERFORMANCE.md):

* :class:`SampleCounts` maintains the bin counts of a stream under
  single-sample add/evict, so a sliding window that replaces one sample
  costs two dict updates instead of an ``O(l)`` recount.
* All float tolerances (quantization rounding, CDF dust absorption,
  convolution key aggregation) are derived from the grid resolution
  instead of being hard-coded, so microsecond- and nanosecond-scale bins
  behave exactly like millisecond ones.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

__all__ = [
    "BinWidthMismatchError",
    "DiscretePMF",
    "SampleCounts",
    "batch_convolve",
    "quantize",
]

# Sums of bin-aligned values accumulate float dust; keys are rounded when
# aggregating convolution results.  Nine decimals is the paper-era default
# for millisecond-scale grids; finer grids get more decimals via
# :func:`_grid_decimals` so sub-1e-8 bins are not flattened to zero.
_KEY_DECIMALS = 9

# Dense-lattice convolution switches from ``np.convolve`` to an FFT once
# both operands span at least this many lattice slots; below it the
# direct product beats the transform setup.
_FFT_CROSSOVER = 64

# A grid-aligned pmf can still be *sparse* on its lattice (a handful of
# atoms spread over a huge range, e.g. nanosecond bins under millisecond
# values).  The dense path is only taken when the output lattice is not
# grossly larger than the pairwise work it replaces, nor beyond an
# absolute slot cap; otherwise the exact pairwise path runs.
_DENSE_BUDGET_FACTOR = 8
_DENSE_SLOT_CAP = 1 << 22


class BinWidthMismatchError(ValueError):
    """Convolution of two grid-tagged pmfs with different bin widths.

    Summing variables quantized on different grids silently lands the
    result off either grid: downstream dust tolerances and cache keys
    assume one lattice, so the misalignment surfaces as wrong CDF reads
    far from the construction site.  The operation is refused instead;
    re-bin one operand (or build it untagged) to opt in explicitly.
    """


def _grid_decimals(resolution: float) -> int:
    """Rounding decimals that preserve a grid of spacing ``resolution``.

    Coarse grids (``resolution >= 1e-6``) keep the historical 9 decimals;
    finer grids get three decimal orders of headroom below their spacing,
    capped at 15 (the edge of double precision for O(1) magnitudes).
    """
    if resolution <= 0 or not math.isfinite(resolution):
        return _KEY_DECIMALS
    return max(_KEY_DECIMALS, min(15, 3 - int(math.floor(math.log10(resolution)))))


def quantize(value: float, bin_width: float) -> float:
    """Round ``value`` to the nearest multiple of ``bin_width``."""
    if bin_width <= 0:
        raise ValueError(f"bin_width must be > 0, got {bin_width}")
    return round(round(value / bin_width) * bin_width, _grid_decimals(bin_width))


class SampleCounts:
    """Incrementally maintained bin counts of a measurement stream.

    This is the count-delta backend of :meth:`DiscretePMF.from_samples`:
    a sliding window that pushes one sample and evicts another updates two
    dictionary entries instead of recounting all ``l`` samples.  The
    repository's windows own one instance per bin width (see
    ``SlidingWindow.pmf``).
    """

    __slots__ = ("bin_width", "_counts", "_total")

    def __init__(self, bin_width: float, samples: Iterable[float] = ()) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be > 0, got {bin_width}")
        self.bin_width = float(bin_width)
        self._counts: Dict[float, int] = {}
        self._total = 0
        for sample in samples:
            self.add(sample)

    def add(self, sample: float) -> None:
        """Count one new sample."""
        key = quantize(float(sample), self.bin_width)
        self._counts[key] = self._counts.get(key, 0) + 1
        self._total += 1

    def evict(self, sample: float) -> None:
        """Remove one previously added sample."""
        key = quantize(float(sample), self.bin_width)
        count = self._counts.get(key, 0)
        if count == 0:
            raise ValueError(f"cannot evict {sample!r}: bin {key!r} is empty")
        if count == 1:
            del self._counts[key]
        else:
            self._counts[key] = count - 1
        self._total -= 1

    def replace(self, new_sample: float, evicted: Optional[float] = None) -> None:
        """Push ``new_sample``, evicting ``evicted`` first when given."""
        if evicted is not None:
            self.evict(evicted)
        self.add(new_sample)

    def counts(self) -> Dict[float, int]:
        """Current bin counts (copy)."""
        return dict(self._counts)

    def __len__(self) -> int:
        return self._total

    def pmf(self) -> "DiscretePMF":
        """The relative-frequency pmf of the counted samples."""
        return DiscretePMF.from_counts(self._counts, bin_width=self.bin_width)

    def __repr__(self) -> str:
        return (
            f"<SampleCounts bins={len(self._counts)} total={self._total} "
            f"bin_width={self.bin_width}>"
        )


class DiscretePMF:
    """A probability mass function over a finite set of float values.

    Instances are immutable; all operations return new pmfs.  Values are
    kept sorted, probabilities sum to 1 (within float tolerance).  The
    cumulative-probability array and the grid resolution are computed
    lazily and cached, so repeated :meth:`cdf` queries cost a binary
    search.

    ``bin_width`` optionally tags the pmf as living on a regular grid of
    that spacing (set automatically by the sample-based constructors).
    Two pmfs tagged with the *same* width convolve on the dense lattice
    (direct or FFT, see :meth:`convolve`); tagged with different widths
    they refuse with :class:`BinWidthMismatchError` rather than silently
    misaligning the result's support.
    """

    __slots__ = ("_values", "_probs", "_cum", "_gap", "_bin_width")

    def __init__(
        self,
        values: Sequence[float],
        probs: Sequence[float],
        bin_width: Optional[float] = None,
    ) -> None:
        if len(values) != len(probs):
            raise ValueError("values and probs must have equal length")
        if len(values) == 0:
            raise ValueError("a pmf needs at least one atom")
        if bin_width is not None and bin_width <= 0:
            raise ValueError(f"bin_width must be > 0, got {bin_width}")
        values_arr = np.asarray(values, dtype=float)
        probs_arr = np.asarray(probs, dtype=float)
        if np.any(probs_arr < -1e-12):
            raise ValueError("probabilities must be non-negative")
        total = float(probs_arr.sum())
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-6):
            raise ValueError(f"probabilities must sum to 1, got {total}")
        order = np.argsort(values_arr)
        self._values = values_arr[order]
        self._probs = np.maximum(probs_arr[order], 0.0)
        # Renormalize away any float dust introduced by clipping.
        self._probs = self._probs / self._probs.sum()
        self._cum = None
        self._gap = None
        self._bin_width = float(bin_width) if bin_width is not None else None

    # -- constructors ------------------------------------------------------
    @classmethod
    def degenerate(cls, value: float) -> "DiscretePMF":
        """The pmf of a constant."""
        return cls([float(value)], [1.0])

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], bin_width: float = 1.0
    ) -> "DiscretePMF":
        """Relative-frequency pmf of ``samples`` on a ``bin_width`` grid.

        This is exactly the paper's estimator: "we first compute the
        probability mass function of S_i and W_i based on the relative
        frequency of their values recorded in the sliding window".  For
        incremental maintenance under add/evict, keep a
        :class:`SampleCounts` instead of re-invoking this constructor.
        """
        if len(samples) == 0:
            raise ValueError("cannot build a pmf from zero samples")
        return SampleCounts(bin_width, samples).pmf()

    @classmethod
    def from_counts(
        cls, counts: Mapping[float, int], bin_width: Optional[float] = None
    ) -> "DiscretePMF":
        """Relative-frequency pmf from pre-quantized ``{value: count}``."""
        if not counts:
            raise ValueError("cannot build a pmf from zero samples")
        total = float(sum(counts.values()))
        values = sorted(counts)
        probs = [counts[v] / total for v in values]
        return cls(values, probs, bin_width=bin_width)

    # -- accessors ----------------------------------------------------------
    @property
    def bin_width(self) -> Optional[float]:
        """Grid spacing this pmf is tagged with (``None`` when off-grid)."""
        return self._bin_width
    @property
    def values(self) -> npt.NDArray[np.float64]:
        """Atom locations, sorted ascending (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def probs(self) -> npt.NDArray[np.float64]:
        """Atom probabilities aligned with :attr:`values` (read-only)."""
        view = self._probs.view()
        view.flags.writeable = False
        return view

    @property
    def support_size(self) -> int:
        """Number of atoms."""
        return int(self._values.size)

    def items(self) -> List[Tuple[float, float]]:
        """``(value, probability)`` pairs, ascending by value."""
        return list(zip(self._values.tolist(), self._probs.tolist()))

    # -- derived caches ------------------------------------------------------
    def cumulative_probs(self) -> npt.NDArray[np.float64]:
        """``P(X <= values[k])`` per atom, cached (read-only view)."""
        if self._cum is None:
            self._cum = np.cumsum(self._probs)
        view = self._cum.view()
        view.flags.writeable = False
        return view

    def resolution(self) -> float:
        """Smallest gap between adjacent atoms (``inf`` for a singleton)."""
        if self._gap is None:
            if self._values.size > 1:
                self._gap = float(np.min(np.diff(self._values)))
            else:
                self._gap = math.inf
        return self._gap

    def dust_tolerance(self) -> float:
        """Absolute tolerance that absorbs grid float dust.

        Derived from the atom spacing: one decimal-rounding quantum of the
        grid, never more than half the spacing (so neighbouring atoms can
        never be conflated).  Millisecond-scale grids keep the historical
        1e-9.
        """
        gap = self.resolution()
        tol = 10.0 ** (-_grid_decimals(gap))
        if math.isfinite(gap):
            tol = min(tol, 0.5 * gap)
        return tol

    # -- statistics ---------------------------------------------------------
    def mean(self) -> float:
        """Expected value."""
        return float(np.dot(self._values, self._probs))

    def variance(self) -> float:
        """Variance."""
        mu = self.mean()
        return float(np.dot((self._values - mu) ** 2, self._probs))

    def cdf(self, t: float) -> float:
        """``P(X <= t)`` — the distribution function ``F(t)``.

        A grid-derived tolerance (:meth:`dust_tolerance`) absorbs bin
        float dust so that ``cdf(value)`` includes the atom at ``value``;
        the result is clamped to [0, 1] against summation roundoff.
        """
        tol = self.dust_tolerance()
        if t >= self._values[-1] - tol:
            return 1.0  # at or beyond the largest atom: certain
        index = int(np.searchsorted(self._values, t + tol, side="right"))
        if index == 0:
            return 0.0
        return min(1.0, max(0.0, float(self.cumulative_probs()[index - 1])))

    def survival(self, t: float) -> float:
        """``P(X > t) = 1 − F(t)``."""
        return max(0.0, 1.0 - self.cdf(t))

    def quantile(self, q: float) -> float:
        """Smallest value ``v`` with ``F(v) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must be in [0, 1], got {q}")
        cumulative = self.cumulative_probs()
        index = int(np.searchsorted(cumulative, q - 1e-12))
        index = min(index, self._values.size - 1)
        return float(self._values[index])

    def min(self) -> float:
        """Smallest atom."""
        return float(self._values[0])

    def max(self) -> float:
        """Largest atom."""
        return float(self._values[-1])

    # -- algebra ------------------------------------------------------------
    def shift(self, delta: float) -> "DiscretePMF":
        """The pmf of ``X + delta`` (adding a constant, e.g. ``T_i``).

        A translation keeps the atom spacing, so the grid tag survives
        (the offset moves, which the lattice convolution handles).
        """
        decimals = _grid_decimals(self.resolution())
        values = np.round(self._values + float(delta), decimals)
        return DiscretePMF(values, self._probs, bin_width=self._bin_width)

    def scale(self, factor: float) -> "DiscretePMF":
        """The pmf of ``factor · X`` (used by queue-scaling extensions).

        Scaling by an arbitrary factor leaves the estimator's bin grid,
        so the result is returned *untagged*: a later convolution falls
        back to the exact pairwise path instead of pretending the atoms
        still sit on the original lattice.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        if factor == 0:
            return DiscretePMF.degenerate(0.0)
        decimals = _grid_decimals(self.resolution() * float(factor))
        values = np.round(self._values * float(factor), decimals)
        # Scaling cannot merge distinct atoms (it is injective for f>0),
        # so values stay unique.
        return DiscretePMF(values, self._probs)

    def convolve(self, other: "DiscretePMF") -> "DiscretePMF":
        """The pmf of the sum of two independent variables.

        The discrete convolution of §5.3.1, dispatched by shape:

        * a singleton operand is a constant shift (translation);
        * two pmfs tagged with the same ``bin_width`` convolve on the
          dense lattice — ``np.convolve`` below :data:`_FFT_CROSSOVER`
          slots, FFT above it — in ``O(L log L)`` instead of ``O(L²)``;
        * differing tags raise :class:`BinWidthMismatchError`;
        * untagged (or lattice-hostile, see :data:`_DENSE_BUDGET_FACTOR`)
          operands take the exact pairwise outer-product path.
        """
        if other._values.size == 1:
            return self.shift(float(other._values[0]))
        if self._values.size == 1:
            return other.shift(float(self._values[0]))
        if self._bin_width is not None and other._bin_width is not None:
            if not math.isclose(
                self._bin_width, other._bin_width, rel_tol=1e-9, abs_tol=0.0
            ):
                raise BinWidthMismatchError(
                    f"cannot convolve pmfs on different grids: bin widths "
                    f"{self._bin_width} and {other._bin_width}"
                )
            dense = self._convolve_lattice(other)
            if dense is not None:
                return dense
        return self._convolve_pairwise(other)

    def _convolve_pairwise(self, other: "DiscretePMF") -> "DiscretePMF":
        """Exact ``O(L²)`` pairwise-sum convolution (the general path)."""
        sums = np.add.outer(self._values, other._values).ravel()
        weights = np.multiply.outer(self._probs, other._probs).ravel()
        decimals = _grid_decimals(min(self.resolution(), other.resolution()))
        keys = np.round(sums, decimals)
        unique, inverse = np.unique(keys, return_inverse=True)
        probs = np.bincount(inverse, weights=weights)
        width = None
        if self._bin_width is not None and other._bin_width is not None:
            width = self._bin_width
        return DiscretePMF(unique, probs, bin_width=width)

    def _lattice_indices(self) -> Optional[npt.NDArray[np.int64]]:
        """Integer lattice offsets of the atoms, or ``None`` off-grid.

        Guards the dense path against a stale grid tag: every atom must
        sit within a relative hair of ``values[0] + k · bin_width``.
        """
        width = self._bin_width
        offsets = (self._values - self._values[0]) / width
        indices = np.rint(offsets)
        if not np.all(np.abs(offsets - indices) <= 1e-6):
            return None
        return indices.astype(np.int64)

    def _convolve_lattice(self, other: "DiscretePMF") -> Optional["DiscretePMF"]:
        """Dense same-grid convolution; ``None`` defers to the pairwise path."""
        width = self._bin_width
        ia = self._lattice_indices()
        ib = other._lattice_indices()
        if ia is None or ib is None:
            return None
        len_a = int(ia[-1]) + 1
        len_b = int(ib[-1]) + 1
        out_len = len_a + len_b - 1
        if out_len > _DENSE_SLOT_CAP or (
            out_len > 4096
            and out_len
            > _DENSE_BUDGET_FACTOR * self._values.size * other._values.size
        ):
            return None
        dense_a = np.zeros(len_a)
        dense_a[ia] = self._probs
        dense_b = np.zeros(len_b)
        dense_b[ib] = other._probs
        if min(len_a, len_b) >= _FFT_CROSSOVER:
            full = _fft_convolve(dense_a, dense_b, out_len)
            # FFT round-off leaves ± noise in empty slots and drifts the
            # total mass; clamp negatives and drop the noise floor (the
            # constructor renormalizes the surviving mass to exactly 1).
            floor = out_len * np.finfo(float).eps
        else:
            full = np.convolve(dense_a, dense_b)
            floor = 0.0
        keep = np.nonzero(full > floor)[0]
        offset = float(self._values[0]) + float(other._values[0])
        decimals = _grid_decimals(width)
        values = np.round(offset + keep * width, decimals)
        return DiscretePMF(values, full[keep], bin_width=width)

    def __add__(self, other: "DiscretePMF") -> "DiscretePMF":
        if not isinstance(other, DiscretePMF):
            return NotImplemented
        return self.convolve(other)

    # -- comparison ----------------------------------------------------------
    def allclose(self, other: "DiscretePMF", tol: float = 1e-9) -> bool:
        """Structural equality within ``tol``."""
        return (
            self.support_size == other.support_size
            and bool(np.allclose(self._values, other._values, atol=tol))
            and bool(np.allclose(self._probs, other._probs, atol=tol))
        )

    def __repr__(self) -> str:
        return (
            f"<DiscretePMF atoms={self.support_size} "
            f"mean={self.mean():.3f} range=[{self.min():.3f}, {self.max():.3f}]>"
        )


def _fft_convolve(
    a: npt.NDArray[np.float64], b: npt.NDArray[np.float64], out_len: int
) -> npt.NDArray[np.float64]:
    """Linear convolution of two dense prob vectors via a real FFT."""
    size = 1 << max(0, out_len - 1).bit_length()
    product = np.fft.rfft(a, size) * np.fft.rfft(b, size)
    return np.fft.irfft(product, size)[:out_len]


def batch_convolve(
    pairs: Sequence[Tuple["DiscretePMF", "DiscretePMF"]],
) -> List[Optional["DiscretePMF"]]:
    """Convolve many same-grid pmf pairs in one padded FFT pass.

    The array kernel behind the estimator's batched ``S_i ⊛ W_i``
    refresh: every lattice-compatible pair contributes one row to a pair
    of zero-padded dense matrices, a single ``rfft``/``irfft`` along the
    row axis convolves them all, and each row is pruned back to a sparse
    :class:`DiscretePMF` (FFT noise clamped, mass renormalized by the
    constructor — same guarantees as :meth:`DiscretePMF.convolve`).

    Returns a list aligned with ``pairs``.  Singleton operands are
    handled by the shift fast path; pairs that cannot take the dense
    lattice path (untagged, off-grid, or over the slot budget) come back
    as ``None`` so the caller can fall back to pairwise ``convolve`` —
    mismatched grid tags raise :class:`BinWidthMismatchError` exactly
    like the scalar method.
    """
    results: List[Optional[DiscretePMF]] = [None] * len(pairs)
    rows: List[
        Tuple[
            int,
            DiscretePMF,
            DiscretePMF,
            npt.NDArray[np.int64],
            npt.NDArray[np.int64],
        ]
    ] = []
    for index, (a, b) in enumerate(pairs):
        if b._values.size == 1:
            results[index] = a.shift(float(b._values[0]))
            continue
        if a._values.size == 1:
            results[index] = b.shift(float(a._values[0]))
            continue
        if a._bin_width is None or b._bin_width is None:
            continue
        if not math.isclose(a._bin_width, b._bin_width, rel_tol=1e-9, abs_tol=0.0):
            raise BinWidthMismatchError(
                f"cannot convolve pmfs on different grids: bin widths "
                f"{a._bin_width} and {b._bin_width}"
            )
        ia = a._lattice_indices()
        ib = b._lattice_indices()
        if ia is None or ib is None:
            continue
        out_len = int(ia[-1]) + int(ib[-1]) + 1
        if out_len > _DENSE_SLOT_CAP or (
            out_len > 4096
            and out_len > _DENSE_BUDGET_FACTOR * a._values.size * b._values.size
        ):
            continue
        rows.append((index, a, b, ia, ib))
    if not rows:
        return results

    len_a = max(int(ia[-1]) + 1 for _, _, _, ia, _ in rows)
    len_b = max(int(ib[-1]) + 1 for _, _, _, _, ib in rows)
    out_len = len_a + len_b - 1
    size = 1 << max(0, out_len - 1).bit_length()
    dense_a = np.zeros((len(rows), len_a))
    dense_b = np.zeros((len(rows), len_b))
    for row, (_, a, b, ia, ib) in enumerate(rows):
        dense_a[row, ia] = a._probs
        dense_b[row, ib] = b._probs
    full = np.fft.irfft(
        np.fft.rfft(dense_a, size, axis=1) * np.fft.rfft(dense_b, size, axis=1),
        size,
        axis=1,
    )
    floor = size * np.finfo(float).eps
    for row, (index, a, b, ia, ib) in enumerate(rows):
        row_len = int(ia[-1]) + int(ib[-1]) + 1
        dense = full[row, :row_len]
        keep = np.nonzero(dense > floor)[0]
        width = a._bin_width
        offset = float(a._values[0]) + float(b._values[0])
        values = np.round(offset + keep * width, _grid_decimals(width))
        results[index] = DiscretePMF(values, dense[keep], bin_width=width)
    return results
