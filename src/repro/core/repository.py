"""The gateway information repository (paper §5.2).

One repository lives inside each client's timing fault handler and caches,
for every replica of the handler's service:

* the current number of outstanding requests in the replica's queue,
* the most recently measured two-way gateway-to-gateway delay ``T_i``,
* a *service time vector* — the service times of the most recent ``l``
  requests (a sliding window), and
* a *queuing delay vector* — the queuing delays over the same window.

The repository is deliberately local (no remote calls, no concurrency
control) — the paper lists exactly these advantages over a global
information service.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from .distribution import DiscretePMF, SampleCounts

__all__ = ["SlidingWindow", "ReplicaRecord", "InformationRepository"]


class SlidingWindow:
    """Fixed-capacity window over the most recent measurements.

    Besides the raw values, the window maintains — lazily, one per
    requested bin width — incremental :class:`SampleCounts` so that a
    push/evict updates bin counts in O(1) and :meth:`pmf` can serve the
    window's empirical pmf without an O(l) recount.  The monotone
    :attr:`version` (bumped on every mutation) is the cache-invalidation
    signal estimators key on; see docs/ARCHITECTURE.md.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"window size must be >= 1, got {size}")
        self.size = int(size)
        self._values: Deque[float] = deque(maxlen=self.size)
        # Monotone version, bumped on every append; estimators use it to
        # cache derived pmfs.
        self.version = 0
        # bin_width -> incrementally maintained counts of the window.
        self._counters: Dict[float, SampleCounts] = {}
        # bin_width -> (version the pmf was built at, pmf).
        self._pmf_cache: Dict[float, Tuple[int, DiscretePMF]] = {}

    def append(self, value: float) -> None:
        """Push one measurement, evicting the oldest if full."""
        if value < 0:
            raise ValueError(f"measurements must be >= 0, got {value}")
        value = float(value)
        evicted = self._values[0] if len(self._values) == self.size else None
        self._values.append(value)
        self.version += 1
        for counter in self._counters.values():
            counter.replace(value, evicted)

    def values(self) -> List[float]:
        """Current window contents, oldest first (copy)."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def full(self) -> bool:
        """Whether the window has reached capacity."""
        return len(self._values) == self.size

    def clear(self) -> None:
        """Drop all measurements."""
        self._values.clear()
        self.version += 1
        self._counters.clear()
        self._pmf_cache.clear()

    def counts(self, bin_width: float) -> Dict[float, int]:
        """Bin counts of the current contents on a ``bin_width`` grid."""
        return self._counter(bin_width).counts()

    def pmf(self, bin_width: float) -> DiscretePMF:
        """Empirical pmf of the window on a ``bin_width`` grid, cached.

        The pmf is rebuilt (from the incrementally maintained counts, not
        from the raw samples) only when :attr:`version` has moved since
        the last call; an unchanged window returns the cached object.
        Raises ``ValueError`` while the window is empty.
        """
        bin_width = float(bin_width)
        cached = self._pmf_cache.get(bin_width)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        pmf = self._counter(bin_width).pmf()
        self._pmf_cache[bin_width] = (self.version, pmf)
        return pmf

    def _counter(self, bin_width: float) -> SampleCounts:
        bin_width = float(bin_width)
        counter = self._counters.get(bin_width)
        if counter is None:
            counter = SampleCounts(bin_width, self._values)
            self._counters[bin_width] = counter
        return counter

    def __repr__(self) -> str:
        return f"<SlidingWindow {len(self._values)}/{self.size}>"


class ReplicaRecord:
    """Everything the repository knows about one replica.

    ``gateway_window_size`` enables the paper's §5.3.1 extension: instead
    of keeping only the most recent two-way gateway delay, a sliding
    window of recent values is retained so the estimator can treat ``T_i``
    as a distribution — useful on LANs whose traffic *does* fluctuate.
    """

    def __init__(
        self,
        name: str,
        window_size: int,
        gateway_window_size: Optional[int] = None,
        on_mutate: Optional[Callable[[], None]] = None,
    ) -> None:
        self.name = name
        self.service_times = SlidingWindow(window_size)
        self.queue_delays = SlidingWindow(window_size)
        self.gateway_delay_ms: Optional[float] = None
        self.gateway_delays: Optional[SlidingWindow] = (
            SlidingWindow(gateway_window_size)
            if gateway_window_size is not None
            else None
        )
        self._queue_length = 0
        self.last_update_ms: Optional[float] = None
        self._version = 0
        # Owner notification (the repository's global version bump): lets
        # batch consumers invalidate on *any* record mutation — including
        # direct ``record.queue_length = n`` writes from probe replies —
        # without scanning every per-record version.
        self._on_mutate = on_mutate

    @property
    def queue_length(self) -> int:
        """Outstanding requests in the replica's queue (live value)."""
        return self._queue_length

    @queue_length.setter
    def queue_length(self, value: int) -> None:
        self._queue_length = int(value)
        self._version += 1
        if self._on_mutate is not None:
            self._on_mutate()

    @property
    def has_history(self) -> bool:
        """Whether enough data exists to build a response-time model.

        One sample in each window plus a measured gateway delay suffices —
        the model just gets sharper as the windows fill.
        """
        return (
            len(self.service_times) > 0
            and len(self.queue_delays) > 0
            and self.gateway_delay_ms is not None
        )

    @property
    def version(self) -> int:
        """Monotone version covering every mutable field (cache key)."""
        return self._version

    def record_performance(
        self,
        service_time_ms: float,
        queue_delay_ms: float,
        queue_length: int,
        now_ms: float,
    ) -> None:
        """Fold in a performance update pushed by the replica."""
        if queue_length < 0:
            raise ValueError(f"queue_length must be >= 0, got {queue_length}")
        self.service_times.append(service_time_ms)
        self.queue_delays.append(queue_delay_ms)
        self.queue_length = int(queue_length)  # setter bumps + notifies
        self.last_update_ms = float(now_ms)
        self._version += 1

    def record_gateway_delay(self, delay_ms: float, now_ms: float) -> None:
        """Store a freshly measured two-way gateway-to-gateway delay."""
        if delay_ms < 0:
            # Clock arithmetic (t4 − t1 − tq − ts) can go slightly negative
            # when stage timestamps straddle a bin boundary; clamp.
            delay_ms = 0.0
        self.gateway_delay_ms = float(delay_ms)
        if self.gateway_delays is not None:
            self.gateway_delays.append(float(delay_ms))
        self.last_update_ms = float(now_ms)
        self._version += 1
        if self._on_mutate is not None:
            self._on_mutate()

    def staleness(self, now_ms: float) -> float:
        """Milliseconds since the last update (``inf`` if never updated).

        Drives the active-probing extension: records whose staleness
        exceeds a threshold get refreshed out of band.
        """
        if self.last_update_ms is None:
            return float("inf")
        return max(0.0, float(now_ms) - self.last_update_ms)

    def __repr__(self) -> str:
        return (
            f"<ReplicaRecord {self.name!r} qlen={self.queue_length} "
            f"T={self.gateway_delay_ms} history={self.has_history}>"
        )


class InformationRepository:
    """Per-handler cache of replica performance data.

    Parameters
    ----------
    window_size:
        The paper's ``l`` — the number of recent requests whose service
        time and queuing delay are retained per replica.
    """

    def __init__(
        self,
        window_size: int = 5,
        gateway_window_size: Optional[int] = None,
    ) -> None:
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        if gateway_window_size is not None and gateway_window_size < 1:
            raise ValueError(
                f"gateway_window_size must be >= 1, got {gateway_window_size}"
            )
        self.window_size = int(window_size)
        self.gateway_window_size = gateway_window_size
        self._records: Dict[str, ReplicaRecord] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter over *every* mutation of any tracked record.

        Membership changes and record updates (windows, gateway delays,
        live queue depths) all bump it, so one integer comparison tells a
        batch consumer whether anything it derived from this repository
        could have changed — the gate on the estimator's fleet-wide pmf
        cache (``ResponseTimeEstimator.batch_probability_by``).
        """
        return self._version

    def _bump(self) -> None:
        self._version += 1

    # -- membership ----------------------------------------------------------
    def add_replica(self, name: str) -> ReplicaRecord:
        """Start tracking a replica (idempotent; returns its record)."""
        record = self._records.get(name)
        if record is None:
            record = ReplicaRecord(
                name,
                self.window_size,
                self.gateway_window_size,
                on_mutate=self._bump,
            )
            self._records[name] = record
            self._bump()
        return record

    def remove_replica(self, name: str) -> None:
        """Forget a replica (idempotent) — e.g. on a crash notification."""
        if self._records.pop(name, None) is not None:
            self._bump()

    def sync_members(self, members: Iterable[str]) -> None:
        """Reconcile tracked replicas with a new group view."""
        members = set(members)
        for name in list(self._records):
            if name not in members:
                del self._records[name]
                self._bump()
        for name in members:
            self.add_replica(name)

    # -- lookup ---------------------------------------------------------------
    def replicas(self) -> List[str]:
        """Names of all tracked replicas (sorted for determinism)."""
        return sorted(self._records)

    def record(self, name: str) -> ReplicaRecord:
        """The record for ``name`` (KeyError if untracked)."""
        try:
            return self._records[name]
        except KeyError:
            raise KeyError(f"replica {name!r} is not tracked") from None

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __len__(self) -> int:
        return len(self._records)

    def replicas_with_history(self) -> List[str]:
        """Replicas for which a response-time model can be built."""
        return [name for name in self.replicas() if self._records[name].has_history]

    def staleness(self, now_ms: float, name: Optional[str] = None) -> float:
        """Milliseconds since the last update.

        With ``name``, the staleness of that replica's record (KeyError if
        untracked).  Without it, the *minimum* staleness across all
        records — the age of the freshest information any model built
        from this repository rests on (``inf`` when no record has ever
        been updated).  The selection layer's degradation ladder uses
        this to decide when the model is too stale to trust.
        """
        if name is not None:
            return self.record(name).staleness(now_ms)
        if not self._records:
            return float("inf")
        return min(
            record.staleness(now_ms) for record in self._records.values()
        )

    def all_have_history(self) -> bool:
        """Whether every tracked replica has usable history."""
        return bool(self._records) and all(
            record.has_history for record in self._records.values()
        )

    # -- updates (called by the handler) --------------------------------------
    def record_performance(
        self,
        name: str,
        service_time_ms: float,
        queue_delay_ms: float,
        queue_length: int,
        now_ms: float,
    ) -> None:
        """Fold a pushed performance update into ``name``'s record."""
        self.add_replica(name).record_performance(
            service_time_ms, queue_delay_ms, queue_length, now_ms
        )

    def record_gateway_delay(self, name: str, delay_ms: float, now_ms: float) -> None:
        """Store a measured two-way gateway delay for ``name``."""
        self.add_replica(name).record_gateway_delay(delay_ms, now_ms)

    def __repr__(self) -> str:
        return (
            f"<InformationRepository replicas={len(self._records)} "
            f"l={self.window_size}>"
        )
