"""QoS specifications and the timing-failure accounting contract.

A client "expresses its requirements as a quality of service (QoS)
specification ... the name of a service, the time by which the client
wants to receive a response after it transmits its request to this
service, and the minimum probability with which it wants this time
constraint to be met" (paper §4).  The client may negotiate the spec at
runtime; if the system cannot keep the timely-response frequency above the
requested minimum, it is notified through a callback.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

__all__ = ["QoSSpec", "TimingFailureStats", "QoSViolationCallback"]

# Signature of the client callback invoked on a QoS violation:
# callback(service_name, observed_timely_probability, spec)
QoSViolationCallback = Callable[[str, float, "QoSSpec"], None]


@dataclass(frozen=True)
class QoSSpec:
    """A client's timing requirement for one service.

    Attributes
    ----------
    service:
        Name of the replicated service.
    deadline_ms:
        Response must arrive within this many milliseconds of the client's
        request (the paper's ``t``).
    min_probability:
        Minimum probability of a timely response (the paper's ``Pc(t)``).
        ``0.0`` means the client tolerates any failure rate — the paper
        uses this as the worst-case configuration in §6.
    """

    service: str
    deadline_ms: float
    min_probability: float

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline must be > 0 ms, got {self.deadline_ms}")
        if not 0.0 <= self.min_probability <= 1.0:
            raise ValueError(
                f"min_probability must be in [0, 1], got {self.min_probability}"
            )

    def renegotiate(
        self,
        deadline_ms: Optional[float] = None,
        min_probability: Optional[float] = None,
    ) -> "QoSSpec":
        """A new spec with the given fields changed (runtime negotiation)."""
        return replace(
            self,
            deadline_ms=self.deadline_ms if deadline_ms is None else deadline_ms,
            min_probability=(
                self.min_probability
                if min_probability is None
                else min_probability
            ),
        )

    @property
    def max_failure_probability(self) -> float:
        """The failure rate the client is willing to tolerate."""
        return 1.0 - self.min_probability


class TimingFailureStats:
    """Counts timely vs. late responses for one client/service pair.

    The handler "maintains a counter that keeps track of the number of
    times its client has failed to receive a timely response" (§5.4.2) and
    issues a callback when the observed timely frequency falls below the
    spec's minimum probability.

    ``min_samples`` guards the ratio test: with very few responses the
    observed frequency is noise, so no violation is reported before that
    many responses have been seen.
    """

    def __init__(self, min_samples: int = 10) -> None:
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.min_samples = int(min_samples)
        self.responses = 0
        self.timing_failures = 0

    def record(self, response_time_ms: float, deadline_ms: float) -> bool:
        """Record one response; returns ``True`` if it was a timing failure."""
        self.responses += 1
        failed = response_time_ms > deadline_ms
        if failed:
            self.timing_failures += 1
        return failed

    @property
    def timely_responses(self) -> int:
        """Number of responses that met the deadline."""
        return self.responses - self.timing_failures

    @property
    def observed_timely_probability(self) -> float:
        """Fraction of responses that met the deadline (1.0 before any)."""
        if self.responses == 0:
            return 1.0
        return self.timely_responses / self.responses

    @property
    def observed_failure_probability(self) -> float:
        """Fraction of responses that missed the deadline."""
        return 1.0 - self.observed_timely_probability

    def violates(self, spec: QoSSpec) -> bool:
        """Whether the observed frequency has fallen below the spec."""
        if self.responses < self.min_samples:
            return False
        return self.observed_timely_probability < spec.min_probability

    def reset(self) -> None:
        """Clear the counters (e.g. after renegotiation)."""
        self.responses = 0
        self.timing_failures = 0

    def __repr__(self) -> str:
        return (
            f"<TimingFailureStats responses={self.responses} "
            f"failures={self.timing_failures}>"
        )
