"""Automated QoS renegotiation.

The paper's contract (§4, §5.4.2) leaves the renegotiation decision to
the application: on a violation callback, "the client can then either
choose to renegotiate its QoS specification or issue its requests to the
service at a later time."  :class:`AdaptiveQoSController` packages the
common strategy — relax the deadline geometrically until the service can
sustain the requested probability, then (optionally) probe tighter specs
again once things look healthy.

It is deliberately a *client-side* component: it only consumes the
violation callback and the handler's public ``renegotiate_qos`` method,
never the middleware internals.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from .qos import QoSSpec

__all__ = ["AdaptiveQoSController", "RenegotiatingHandler"]


class RenegotiatingHandler(Protocol):
    """What the controller needs from a handler."""

    qos: QoSSpec

    def renegotiate_qos(self, new_spec: QoSSpec) -> None:
        """Adopt a new QoS specification."""


class AdaptiveQoSController:
    """Relaxes (and optionally re-tightens) a client's deadline.

    Parameters
    ----------
    handler:
        The client handler to renegotiate on (any object with ``qos`` and
        ``renegotiate_qos``).
    relax_factor:
        Deadline multiplier applied on each violation (> 1).
    max_deadline_ms:
        Upper bound; violations beyond it are reported but no further
        relaxation happens (the spec is as loose as the client accepts).
    tighten_factor:
        Optional multiplier (< 1) applied by :meth:`try_tighten` when the
        caller decides the service has headroom again.
    min_deadline_ms:
        Lower bound for re-tightening; defaults to the original deadline.
    """

    def __init__(
        self,
        handler: RenegotiatingHandler,
        relax_factor: float = 1.5,
        max_deadline_ms: Optional[float] = None,
        tighten_factor: float = 0.8,
        min_deadline_ms: Optional[float] = None,
    ) -> None:
        if relax_factor <= 1.0:
            raise ValueError(f"relax_factor must be > 1, got {relax_factor}")
        if not 0.0 < tighten_factor < 1.0:
            raise ValueError(
                f"tighten_factor must be in (0, 1), got {tighten_factor}"
            )
        self.handler = handler
        self.relax_factor = float(relax_factor)
        self.tighten_factor = float(tighten_factor)
        original = handler.qos.deadline_ms
        self.max_deadline_ms = (
            float(max_deadline_ms) if max_deadline_ms is not None
            else original * 8.0
        )
        self.min_deadline_ms = (
            float(min_deadline_ms) if min_deadline_ms is not None else original
        )
        if self.min_deadline_ms > self.max_deadline_ms:
            raise ValueError("min_deadline_ms exceeds max_deadline_ms")
        #: (time-agnostic) history of adopted deadlines, newest last.
        self.history: List[float] = [original]
        self.exhausted = False

    # -- the violation callback ------------------------------------------------
    def on_violation(
        self, service: str, observed_probability: float, spec: QoSSpec
    ) -> None:
        """Plug this into the handler's ``violation_callback``."""
        self.relax()

    def relax(self) -> Optional[QoSSpec]:
        """Relax the deadline one step; returns the new spec (or None)."""
        current = self.handler.qos
        if current.deadline_ms >= self.max_deadline_ms:
            self.exhausted = True
            return None
        new_deadline = min(
            self.max_deadline_ms, current.deadline_ms * self.relax_factor
        )
        new_spec = current.renegotiate(deadline_ms=new_deadline)
        self.handler.renegotiate_qos(new_spec)
        self.history.append(new_deadline)
        self.exhausted = new_deadline >= self.max_deadline_ms
        return new_spec

    def try_tighten(self) -> Optional[QoSSpec]:
        """Tighten one step (call when the service shows headroom)."""
        current = self.handler.qos
        if current.deadline_ms <= self.min_deadline_ms:
            return None
        new_deadline = max(
            self.min_deadline_ms, current.deadline_ms * self.tighten_factor
        )
        new_spec = current.renegotiate(deadline_ms=new_deadline)
        self.handler.renegotiate_qos(new_spec)
        self.history.append(new_deadline)
        self.exhausted = False
        return new_spec

    @property
    def relaxations(self) -> int:
        """Number of deadline changes performed so far."""
        return len(self.history) - 1

    def __repr__(self) -> str:
        return (
            f"<AdaptiveQoSController deadline={self.handler.qos.deadline_ms} "
            f"steps={self.relaxations} exhausted={self.exhausted}>"
        )
