"""The probabilistic timeliness model (paper §5.3, Equation 1).

With only the earliest reply delivered, a timing failure occurs only when
*no* replica in the selected subset ``K`` responds by the deadline.  Under
the paper's independence assumption,

    P_K(t) = 1 − Π_{m_i ∈ K} (1 − F_{R_i}(t))

These helpers are deliberately free functions on plain floats so both the
selection algorithm and the experiment analysis can share them.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

__all__ = [
    "subset_timeliness_probability",
    "subset_timeliness_from_map",
    "min_replicas_needed",
]


def subset_timeliness_probability(probabilities: Iterable[float]) -> float:
    """``P_K(t)`` for a subset with the given individual ``F_{R_i}(t)``.

    An empty subset has probability 0 (no replica can reply in time).
    """
    product = 1.0
    empty = True
    for p in probabilities:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probabilities must be in [0, 1], got {p}")
        product *= 1.0 - p
        empty = False
    if empty:
        return 0.0
    return 1.0 - product


def subset_timeliness_from_map(
    subset: Sequence[str], probability_map: Dict[str, float]
) -> float:
    """``P_K(t)`` for named replicas with probabilities in a map."""
    return subset_timeliness_probability(
        probability_map[name] for name in subset
    )


def min_replicas_needed(individual_probability: float, target: float) -> int:
    """Replicas required to hit ``target`` when each has equal probability.

    Solves ``1 − (1 − p)^k ≥ target`` for the smallest integer ``k``.
    Useful for sanity checks and capacity planning; returns a large
    sentinel (``10**9``) when ``p == 0`` and ``target > 0`` (unreachable).
    """
    if not 0.0 <= individual_probability <= 1.0:
        raise ValueError(
            f"probability must be in [0, 1], got {individual_probability}"
        )
    if not 0.0 <= target <= 1.0:
        raise ValueError(f"target must be in [0, 1], got {target}")
    # Exact 0/1 boundary sentinels (values clamp to exactly these), not
    # grid comparisons — the log() below diverges only at exactly 1.0.
    if target == 0.0:  # repro-lint: disable=RL003 (exact boundary sentinel)
        return 1
    if individual_probability == 0.0:  # repro-lint: disable=RL003 (exact boundary sentinel)
        return 10**9
    if individual_probability == 1.0:  # repro-lint: disable=RL003 (exact boundary sentinel)
        return 1
    # k >= log(1 - target) / log(1 - p)
    k = math.log(1.0 - target) / math.log(1.0 - individual_probability) if target < 1.0 else math.inf
    if math.isinf(k):
        return 10**9
    return max(1, math.ceil(k - 1e-12))
