"""The AQuA gateway: per-host message dispatch to protocol handlers.

Each host runs one gateway.  The gateway is the host's single transport
endpoint; it routes incoming messages to the protocol handlers loaded in
it by message kind (each handler declares the kinds it understands) and,
for service-scoped kinds, by service name.  "An AQuA client uses different
gateway handlers to communicate with different server groups" (paper §2) —
which is why handlers, not gateways, own QoS state and repositories.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..net.message import Message
from ..net.transport import TransportAPI
from ..sim.kernel import Simulator
from ..sim.trace import NullTracer, Tracer

__all__ = ["Gateway", "ProtocolHandler", "GatewayError"]


class GatewayError(Exception):
    """Raised on gateway misconfiguration."""


class ProtocolHandler:
    """Base class for gateway protocol handlers.

    Subclasses declare the message kinds they accept via
    :attr:`message_kinds` and the service they are bound to via
    :attr:`service`; the gateway routes on ``(kind, service)``.
    """

    #: Message kinds this handler consumes.
    message_kinds: Tuple[str, ...] = ()
    #: Service the handler is bound to ("" = service-agnostic).
    service: str = ""

    def handle_message(self, message: Message) -> None:
        """Process one inbound message addressed to this handler."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short label for tracing."""
        return f"{type(self).__name__}({self.service})"


class Gateway:
    """Transport endpoint of one host, hosting protocol handlers."""

    def __init__(
        self,
        host: str,
        sim: Simulator,
        transport: TransportAPI,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.host = host
        self.sim = sim
        self.transport = transport
        self.tracer = tracer if tracer is not None else NullTracer()
        self._handlers: Dict[Tuple[str, str], ProtocolHandler] = {}
        transport.bind(host, self._receive)

    # -- handler management ----------------------------------------------------
    def load_handler(self, handler: ProtocolHandler) -> None:
        """Install ``handler`` for all its declared message kinds."""
        if not handler.message_kinds:
            raise GatewayError(
                f"handler {handler.describe()} declares no message kinds"
            )
        for kind in handler.message_kinds:
            key = (kind, handler.service)
            if key in self._handlers:
                raise GatewayError(
                    f"gateway {self.host!r} already routes {key} to "
                    f"{self._handlers[key].describe()}"
                )
            self._handlers[key] = handler

    def unload_handler(self, handler: ProtocolHandler) -> None:
        """Remove ``handler`` from all its routes (idempotent)."""
        for kind in handler.message_kinds:
            key = (kind, handler.service)
            if self._handlers.get(key) is handler:
                del self._handlers[key]

    def handlers(self) -> List[ProtocolHandler]:
        """Distinct handlers currently loaded."""
        seen: List[ProtocolHandler] = []
        for handler in self._handlers.values():
            if handler not in seen:
                seen.append(handler)
        return seen

    # -- dispatch ----------------------------------------------------------
    def _receive(self, message: Message) -> None:
        service = ""
        payload = message.payload
        if isinstance(payload, dict):
            service = payload.get("service", "")
        handler = self._handlers.get((message.kind, service))
        if handler is None:
            # Service-agnostic fallback route.
            handler = self._handlers.get((message.kind, ""))
        if handler is None:
            self.tracer.emit(
                self.sim.now, f"gateway.{self.host}", "gateway.unrouted",
                **message.describe(),
            )
            return
        handler.handle_message(message)

    def __repr__(self) -> str:
        return f"<Gateway host={self.host!r} handlers={len(self.handlers())}>"
