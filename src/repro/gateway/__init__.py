"""AQuA gateway layer: per-host dispatch plus protocol handlers."""

from .gateway import Gateway, GatewayError, ProtocolHandler
from .handlers import (
    ActiveReplicationClientHandler,
    OutcomeKind,
    PassiveReplicationClientHandler,
    PerformanceUpdate,
    PrimaryBackupPolicy,
    ReplyOutcome,
    TimingFaultClientHandler,
    TimingFaultServerHandler,
)

__all__ = [
    "Gateway",
    "GatewayError",
    "ProtocolHandler",
    "TimingFaultClientHandler",
    "TimingFaultServerHandler",
    "ActiveReplicationClientHandler",
    "PassiveReplicationClientHandler",
    "PrimaryBackupPolicy",
    "OutcomeKind",
    "PerformanceUpdate",
    "ReplyOutcome",
]
