"""Retransmission-based client handler (the related-work strawman).

The paper's §1 observes that prior single-replica selection schemes leave
failure handling to the client: "it is the responsibility of the client
to retransmit its request upon failure to receive a response.  Such a
simple retransmission strategy, however, may not be suitable for clients
with specific time constraints."

:class:`RetransmittingClientHandler` implements that strategy faithfully
so the claim can be measured: each request goes to *one* replica (the
individually best); if no reply arrives within ``retry_timeout_ms`` the
request is retransmitted to the next-best replica not yet tried, up to
``max_retries`` times.  Every retransmission burns a chunk of the
deadline — the structural disadvantage the paper's concurrent redundancy
avoids.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...core.selection import (
    SelectionContext,
    SelectionDecision,
    SelectionMeta,
    SelectionPolicy,
)
from ...net.message import Message
from ...orb.iiop import MarshalledCall
from ...orb.object import MethodRequest
from ...sim.events import Event
from .timing_fault import MSG_REQUEST, TimingFaultClientHandler

__all__ = ["RetransmittingClientHandler", "BestSinglePolicy"]


class BestSinglePolicy(SelectionPolicy):
    """Rank replicas by F(t) and expose the full ranking to the handler."""

    name = "best-single"

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        def key(replica: str) -> Tuple[float, str]:
            probability = ctx.estimator.probability_by(
                replica, ctx.qos.deadline_ms
            )
            return (-(probability if probability is not None else -1.0), replica)

        replicas = list(ctx.replicas)
        meta: SelectionMeta = {}
        if ctx.health is not None:
            usable = [r for r in replicas if not ctx.health.is_quarantined(r)]
            if usable:
                replicas = usable
            elif replicas:
                # Every replica quarantined: trying one beats refusing to
                # serve; flag the override so the audit exempts it.
                meta["quarantine_override"] = True
        ranking = sorted(replicas, key=key)
        meta["ranking"] = ranking
        return SelectionDecision(selected=tuple(ranking[:1]), meta=meta)


class RetransmittingClientHandler(TimingFaultClientHandler):
    """Single-replica routing with timeout-driven retransmission.

    Parameters (beyond the base handler's)
    --------------------------------------
    retry_timeout_ms:
        How long to wait for a reply before the *first* retransmission.
        ``None`` defaults to half the QoS deadline — a common rule of
        thumb.
    max_retries:
        Retransmissions per request after the initial send.
    retry_backoff_factor:
        Each successive retransmission of the same request waits
        ``factor`` times longer than the previous one (classic
        exponential backoff; 1.0 restores the fixed-interval strategy).
    retry_timeout_cap_ms:
        Upper bound on any single retry wait.  ``None`` defaults to
        ``max(base timeout, deadline)`` — backing off past the deadline
        only delays the inevitable timeout accounting.
    """

    def __init__(
        self,
        *args: Any,
        retry_timeout_ms: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff_factor: float = 2.0,
        retry_timeout_cap_ms: Optional[float] = None,
        **kwargs: Any,
    ) -> None:
        if "policy" in kwargs and kwargs["policy"] is not None:
            raise ValueError(
                "RetransmittingClientHandler fixes its policy; do not pass one"
            )
        if retry_timeout_ms is not None and retry_timeout_ms <= 0:
            raise ValueError(
                f"retry_timeout_ms must be > 0, got {retry_timeout_ms}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_factor < 1.0:
            raise ValueError(
                f"retry_backoff_factor must be >= 1, got {retry_backoff_factor}"
            )
        if retry_timeout_cap_ms is not None and retry_timeout_cap_ms <= 0:
            raise ValueError(
                f"retry_timeout_cap_ms must be > 0, got {retry_timeout_cap_ms}"
            )
        kwargs["policy"] = BestSinglePolicy()
        super().__init__(*args, **kwargs)
        self.retry_timeout_ms = retry_timeout_ms
        self.max_retries = int(max_retries)
        self.retry_backoff_factor = float(retry_backoff_factor)
        self.retry_timeout_cap_ms = retry_timeout_cap_ms
        self.retransmissions = 0
        # msg_id of a retransmitted copy -> (original msg_id, copy sent at).
        # Entries are popped when the copy's reply folds back and when the
        # original request is forgotten, so the map is bounded by the
        # copies of currently in-flight requests.
        self._aliases: Dict[int, Tuple[int, float]] = {}
        # original msg_id -> copy msg_ids, for cleanup on forget.
        self._copies: Dict[int, List[int]] = {}

    def _effective_retry_timeout(self, attempt: int = 1) -> float:
        """Wait before retransmission number ``attempt`` (1-based).

        Exponential backoff: ``base × factor^(attempt−1)``, bounded by
        ``retry_timeout_cap_ms`` (default: whichever of the base timeout
        and the deadline is larger).
        """
        base = (
            self.retry_timeout_ms
            if self.retry_timeout_ms is not None
            else self.qos.deadline_ms / 2.0
        )
        cap = (
            self.retry_timeout_cap_ms
            if self.retry_timeout_cap_ms is not None
            else max(base, self.qos.deadline_ms)
        )
        return min(base * self.retry_backoff_factor ** (attempt - 1), cap)

    # -- request path ----------------------------------------------------------
    def _dispatch(
        self,
        request: MethodRequest,
        call: MarshalledCall,
        t0: float,
        outcome_event: Event,
    ) -> int:
        msg_id = super()._dispatch(request, call, t0, outcome_event)
        # Arm the retry chain on the request just created (the id is
        # threaded through; inferring it from the _pending keys is racy).
        pending = self._pending.get(msg_id)
        if pending is None:
            return msg_id  # already failed fast (empty view)
        ranking = list(pending.decision.meta.get("ranking", []))
        tried = list(pending.decision.selected)
        self._arm_retry(msg_id, call, ranking, tried, attempt=1)
        return msg_id

    def _arm_retry(
        self,
        msg_id: int,
        call: MarshalledCall,
        ranking: List[str],
        tried: List[str],
        attempt: int,
    ) -> None:
        if attempt > self.max_retries:
            return
        self.sim.call_in(
            self._effective_retry_timeout(attempt),
            lambda: self._maybe_retransmit(msg_id, call, ranking, tried, attempt),
        )

    def _maybe_retransmit(
        self,
        msg_id: int,
        call: MarshalledCall,
        ranking: List[str],
        tried: List[str],
        attempt: int,
    ) -> None:
        pending = self._pending.get(msg_id)
        if pending is None or pending.completed:
            return
        if self.admission is not None and self.admission.suppress_hedging(
            self.system_load()
        ):
            # Under pressure hedged copies are the first load to cut: skip
            # this retransmission but keep the chain armed — a later
            # attempt fires normally if the load has receded by then.
            self.tracer.emit(
                self.clock.kernel_now, f"client.{self.host}", "client.hedge_suppressed",
                msg_id=msg_id, attempt=attempt,
            )
            self._arm_retry(msg_id, call, ranking, tried, attempt + 1)
            return
        if self.health is not None:
            # A retry timeout is omission evidence against every replica
            # addressed so far that stayed silent; the `faulted` set keeps
            # the final response timeout from billing the same silence.
            for silent in sorted(
                pending.expected - pending.replied - pending.faulted
            ):
                pending.faulted.add(silent)
                self.health.record_fault(silent, self.clock.now, kind="omission")
        live = set(self._members)
        if self.health is not None:
            usable = {r for r in live if not self.health.is_quarantined(r)}
            if usable:  # all-quarantined: fall through with the full view
                live = usable
        # Replicas billed as silent this round are the likely dark side of
        # a partition: retransmitting into them resurrects traffic a cut
        # already killed.  Prefer fresh targets, then responsive retried
        # ones; if every live replica is known-silent, skip this attempt
        # (the chain stays armed — a heal makes them eligible again).
        silent = pending.faulted
        candidates = [
            r for r in ranking
            if r in live and r not in tried and r not in silent
        ]
        if not candidates:
            candidates = [r for r in ranking if r in live and r not in silent]
        if not candidates:
            if any(r in live for r in ranking):
                # Every live replica is known-silent: skip the attempt
                # rather than pour copies into the dark side, but keep
                # the chain armed — a reply that sneaks through after a
                # heal still completes the request normally.
                self._arm_retry(msg_id, call, ranking, tried, attempt + 1)
            return
        target = candidates[0]
        tried.append(target)
        copy = Message(
            sender=self.host,
            destination=target,
            kind=MSG_REQUEST,
            payload={"service": self.service, "call": call, "client": self.host},
            size_bytes=call.size_bytes,
        )
        self._aliases[copy.msg_id] = (msg_id, self.clock.now)
        self._copies.setdefault(msg_id, []).append(copy.msg_id)
        # The retransmission target may now reply too; keep the record
        # until it has been heard from (or the response timeout fires).
        pending.expected.add(target)
        self.retransmissions += 1
        self.transport.send(copy)
        self.tracer.emit(
            self.clock.kernel_now, f"client.{self.host}", "client.retransmit",
            msg_id=msg_id, attempt=attempt, replica=target,
        )
        self._arm_retry(msg_id, call, ranking, tried, attempt + 1)

    # -- reply path -------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        # Replies to retransmitted copies correlate to the copy's msg_id;
        # fold them back onto the original request.  The gateway delay of
        # such a reply must be measured from the *copy's* transmission
        # time, so t1 is swapped for the duration of the fold.
        alias = self._aliases.pop(message.correlation_id, None)
        if alias is None:
            super().handle_message(message)
            return
        original_id, copy_sent_at = alias
        copies = self._copies.get(original_id)
        if copies is not None:
            try:
                copies.remove(message.correlation_id)
            except ValueError:
                pass
            if not copies:
                del self._copies[original_id]
        folded = Message(
            sender=message.sender,
            destination=message.destination,
            kind=message.kind,
            payload=message.payload,
            size_bytes=message.size_bytes,
            correlation_id=original_id,
            headers=message.headers,
        )
        pending = self._pending.get(original_id)
        if pending is None:
            super().handle_message(folded)
            return
        saved_t1 = pending.t1
        pending.t1 = copy_sent_at
        try:
            super().handle_message(folded)
        finally:
            pending.t1 = saved_t1

    # -- lifecycle -------------------------------------------------------------
    def _on_request_forgotten(self, msg_id: int) -> None:
        """Drop the aliases of a request's copies when the request goes.

        Copies whose replies never arrive (crashed replica, lost message)
        would otherwise leak their alias entries forever.
        """
        for copy_id in self._copies.pop(msg_id, ()):
            self._aliases.pop(copy_id, None)

    def lifecycle_leaks(self) -> Dict[str, List[Any]]:
        leaks = super().lifecycle_leaks()
        if self._aliases:
            leaks["aliases"] = sorted(self._aliases)
        if self._copies:
            leaks["alias_copies"] = sorted(self._copies)
        return leaks

    def __repr__(self) -> str:
        return (
            f"<RetransmittingClientHandler {self.host!r} "
            f"retransmissions={self.retransmissions}>"
        )
