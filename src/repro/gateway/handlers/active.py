"""Active replication handler (prior AQuA work, [18]/[16] in the paper).

Every request is sent to *every* live replica and the first reply wins —
maximum crash tolerance, no selectivity.  Implemented as the timing fault
machinery pinned to :class:`~repro.core.baselines.AllReplicasPolicy`; the
request/reply bookkeeping (first-reply-wins, repository updates) is
identical, which is faithful to AQuA where the handlers share the gateway
infrastructure.
"""

from __future__ import annotations

from typing import Any

from ...core.baselines import AllReplicasPolicy
from .timing_fault import TimingFaultClientHandler

__all__ = ["ActiveReplicationClientHandler"]


class ActiveReplicationClientHandler(TimingFaultClientHandler):
    """Client handler that broadcasts each request to the full view."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        if "policy" in kwargs and kwargs["policy"] is not None:
            raise ValueError(
                "ActiveReplicationClientHandler fixes its policy; "
                "do not pass one"
            )
        kwargs["policy"] = AllReplicasPolicy()
        super().__init__(*args, **kwargs)
