"""The timing fault handler (paper §5.4) — client and server sides.

Client side (:class:`TimingFaultClientHandler`): intercepts a request at
``t0``, runs the selection policy, multicasts the request to the selected
replicas at ``t1``, delivers the *first* reply to the client, mines every
reply (including redundant ones) for performance data, detects timing
failures (``tr = t4 − t0 > t``), and notifies the client via a callback
when the observed timely frequency drops below the QoS minimum.

Server side (:class:`TimingFaultServerHandler`): enqueues requests at
``t2``, dequeues at ``t3`` (FIFO), services them (``ts``), replies with the
performance data ``(ts, tq = t3 − t2, queue length)`` embedded, and pushes
the same data to all subscribed clients on every processed request.

All interval end-points are measured on a single simulated host, so no
clock synchronization is assumed — exactly as in the paper.

Paper §8 extensions implemented here, all off by default:

* **Request classification** (``classifier=``): performance data is kept
  per request class — e.g. per method ("classify performance data based
  on the method interfaces") or per argument shape ("distinguish between
  requests made to the same server based on the arguments passed").
* **Active probing** (``probe_staleness_ms=``): when a replica's record
  goes stale, the handler pings its gateway out of band to refresh the
  gateway delay and queue length ("use active probes [5] when a replica's
  performance information is obsolete").
* **Gateway-delay windows** (``gateway_window_size=``): ``T_i`` becomes a
  sliding-window distribution instead of a point value, for LANs whose
  traffic does fluctuate (§5.3.1's "simple to extend" remark).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Generator,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from ...core.estimator import ResponseTimeEstimator
from ...core.qos import QoSSpec, QoSViolationCallback, TimingFailureStats
from ...core.repository import InformationRepository
from ...core.selection import (
    DynamicSelectionPolicy,
    SelectionContext,
    SelectionDecision,
    SelectionMeta,
    SelectionPolicy,
)
from ...group.ensemble import GroupCommunication
from ...group.membership import GroupView, MembershipError
from ...health import HealthConfig, HealthListener, HealthMonitor
from ...metrics.collector import MetricsCollector
from ...net.message import Message
from ...net.transport import TransportAPI
from ...overload import (
    AdmissionController,
    GovernedSelectionPolicy,
    LoadTracker,
    OverloadConfig,
)
from ...orb.iiop import MarshalledCall, MarshalledReply, MarshallingModel
from ...orb.object import MethodRequest, ServiceInterface
from ...orb.orb import RequestInterceptor
from ...replica.server import ReplicaApplication
from ...rng import seeded_generator
from ...sim.events import Event
from ...sim.hostclock import HostClock
from ...sim.kernel import Simulator
from ...sim.trace import NullTracer, Tracer
from ..gateway import ProtocolHandler

__all__ = [
    "MSG_REQUEST",
    "MSG_REPLY",
    "MSG_PERF",
    "MSG_SUBSCRIBE",
    "MSG_PROBE",
    "MSG_PROBE_REPLY",
    "DEFAULT_CLASS",
    "OutcomeKind",
    "PerformanceUpdate",
    "ReplyOutcome",
    "RequestClassifier",
    "method_classifier",
    "TimingFaultServerHandler",
    "TimingFaultClientHandler",
]

MSG_REQUEST = "tf-request"
MSG_REPLY = "tf-reply"
MSG_PERF = "tf-perf"
MSG_SUBSCRIBE = "tf-subscribe"
MSG_PROBE = "tf-probe"
MSG_PROBE_REPLY = "tf-probe-reply"

#: Class key used when no classifier is configured (the paper's base
#: design: one model per service).
DEFAULT_CLASS = ""

# A classifier maps a request to the performance class whose history
# should model it.
RequestClassifier = Callable[[MethodRequest], str]


def method_classifier(request: MethodRequest) -> str:
    """Classify by method name — the paper's multi-interface extension."""
    return request.method


@dataclass(frozen=True)
class PerformanceUpdate:
    """The measurements a replica publishes after servicing a request.

    ``request`` identifies what was serviced so that classifying clients
    can file the measurement under the right performance class.

    ``enqueued_at_ms`` and ``sent_at_ms`` are *absolute readings of the
    replica's own clock* (``t2`` and the reply-send instant).  The
    skew-tolerant client ignores them — absolute remote timestamps are
    not comparable with its own clock — but a naive implementation can
    be built on them, which is exactly what experiment A18 measures.
    """

    replica: str
    service: str
    service_time_ms: float  # ts
    queue_delay_ms: float  # tq
    queue_length: int
    request: Optional[MethodRequest] = None
    enqueued_at_ms: float = 0.0  # t2 on the replica's clock
    sent_at_ms: float = 0.0  # reply-send instant on the replica's clock


class OutcomeKind(Enum):
    """The three mutually exclusive completion outcomes of a request.

    Every request ends exactly one way — a reply XOR a timeout XOR a
    shed (the exactly-once invariant the
    :class:`~repro.faultinject.auditor.LifecycleAuditor` audits).
    Consumers should branch on :attr:`ReplyOutcome.kind` and close the
    chain with ``assert_never`` so the type checker proves every outcome
    — in particular ``SHED`` — is handled.
    """

    REPLY = "reply"
    TIMEOUT = "timeout"
    SHED = "shed"


@dataclass(frozen=True)
class ReplyOutcome:
    """What the client's invocation event fires with.

    ``timed_out`` marks requests for which no reply arrived before the
    handler's response timeout (e.g. every selected replica crashed);
    these count as timing failures.  ``shed`` marks requests the
    admission controller fail-fast rejected before any copy hit the
    wire — the third, mutually exclusive completion outcome (reply XOR
    timeout XOR shed); sheds are *not* timing failures and stay out of
    :class:`~repro.core.qos.TimingFailureStats`.  :attr:`kind` folds the
    two flags into the closed :class:`OutcomeKind` enum; new code should
    branch on it exhaustively rather than on the booleans.
    """

    value: Any
    response_time_ms: float
    timely: bool
    timed_out: bool
    replica: Optional[str]
    redundancy: int
    request_id: int
    decision_meta: SelectionMeta = field(
        default_factory=lambda: SelectionMeta()
    )
    shed: bool = False

    @property
    def kind(self) -> OutcomeKind:
        """The completion outcome as a checker-enforceable enum."""
        if self.shed:
            return OutcomeKind.SHED
        if self.timed_out:
            return OutcomeKind.TIMEOUT
        return OutcomeKind.REPLY


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------


class TimingFaultServerHandler(ProtocolHandler):
    """Server-gateway half of the timing fault handler.

    Owns the replica's FIFO request queue and the stage timestamps
    ``t2``/``t3``/``ts`` (paper §5.4.1).  Probes (the §8 extension) are
    answered directly by the gateway, without entering the FIFO queue —
    they measure the network and read the queue depth, not the servant.
    """

    message_kinds = (MSG_REQUEST, MSG_SUBSCRIBE, MSG_PROBE)

    def __init__(
        self,
        sim: Simulator,
        app: ReplicaApplication,
        transport: TransportAPI,
        marshalling: Optional[MarshallingModel] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsCollector] = None,
        clock: Optional[HostClock] = None,
    ) -> None:
        self.sim = sim
        self.clock = clock if clock is not None else HostClock(sim, host=app.host)
        self.app = app
        self.transport = transport
        self.marshalling = marshalling or MarshallingModel()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics or MetricsCollector(keep_samples=False)
        self.service = app.service
        self.host = app.host
        self._queue: Deque[Tuple[Message, float]] = deque()
        self._subscribers: Set[str] = set()
        self._wakeup: Optional[Event] = None
        self._busy = False
        self.crashed = False
        self.probes_answered = 0
        self._process = sim.spawn(self._run(), name=f"server.{self.host}")

    # -- inspection ------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Outstanding requests: waiting plus the one in service."""
        return len(self._queue) + (1 if self._busy else 0)

    @property
    def subscribers(self) -> List[str]:
        """Clients subscribed to performance updates (sorted)."""
        return sorted(self._subscribers)

    # -- message handling --------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        if self.crashed:
            return
        if message.kind == MSG_SUBSCRIBE:
            self._subscribers.add(message.payload["client"])
            return
        if message.kind == MSG_PROBE:
            self._answer_probe(message)
            return
        # MSG_REQUEST: record the enqueue time t2 and wake the consumer.
        t2 = self.clock.now
        self._queue.append((message, t2))
        self.tracer.emit(
            self.clock.kernel_now, f"server.{self.host}", "server.enqueued",
            msg_id=message.msg_id, queue=len(self._queue),
        )
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed(None)

    def _answer_probe(self, message: Message) -> None:
        """Reply to a gateway-level probe, bypassing the FIFO queue."""
        self.probes_answered += 1
        self.transport.send(
            Message(
                sender=self.host,
                destination=message.sender,
                kind=MSG_PROBE_REPLY,
                payload={
                    "service": self.service,
                    "replica": self.host,
                    "queue_length": self.queue_length,
                },
                size_bytes=64,
                correlation_id=message.msg_id,
            )
        )

    # -- the FIFO service loop ---------------------------------------------------
    def _run(self) -> Generator[Event, Any, None]:
        while True:
            while not self._queue:
                self._wakeup = self.sim.event()
                yield self._wakeup
            message, t2 = self._queue.popleft()
            self._busy = True
            t3 = self.clock.now
            queue_delay = t3 - t2  # tq

            call = message.payload["call"]
            request, demarshal_cost = self.marshalling.demarshal_request(call)
            yield self.sim.timeout(demarshal_cost)

            # The load profile is a physical process: it follows the
            # kernel clock, not this host's (possibly faulty) view of it.
            duration = self.app.service_duration(
                request.method, self.clock.kernel_now
            )
            service_started = self.clock.now
            self.app.begin_service()
            try:
                yield self.sim.timeout(duration)
                value = self.app.execute(request)
            finally:
                self.app.end_service()
            # ts (Stage 4 only), *measured on this host's clock*: exact
            # on a healthy clock, corrupted by drift/step/freeze faults.
            service_time = self.clock.elapsed_since(service_started, duration)

            signature = self.app.servant.interface.method(request.method)
            reply, marshal_cost = self.marshalling.marshal_reply(value, signature)
            yield self.sim.timeout(marshal_cost)
            self._busy = False

            if self.crashed:
                return  # crashed mid-service: the reply is lost
            self.tracer.emit(
                self.clock.kernel_now, f"server.{self.host}", "server.serviced",
                msg_id=message.msg_id, tq=queue_delay, ts=service_time,
                demarshal=demarshal_cost, marshal=marshal_cost,
            )
            self._send_reply(
                message, request, reply, service_time, queue_delay, t2
            )

    def _send_reply(
        self,
        request_msg: Message,
        request: MethodRequest,
        reply: MarshalledReply,
        service_time: float,
        queue_delay: float,
        enqueued_at: float,
    ) -> None:
        perf = PerformanceUpdate(
            replica=self.host,
            service=self.service,
            service_time_ms=service_time,
            queue_delay_ms=queue_delay,
            queue_length=self.queue_length,
            request=request,
            enqueued_at_ms=enqueued_at,
            sent_at_ms=self.clock.now,
        )
        reply_msg = Message(
            sender=self.host,
            destination=request_msg.sender,
            kind=MSG_REPLY,
            payload={
                "service": self.service,
                "reply": reply,
                "perf": perf,
                "replica": self.host,
            },
            size_bytes=reply.size_bytes,
            correlation_id=request_msg.msg_id,
        )
        self.transport.send(reply_msg)
        self.metrics.increment(
            "server.replies", labels={"replica": self.host}
        )
        # Push the fresh performance data to every subscriber except the
        # requester (whose copy rides inside the reply itself).
        for subscriber in self._subscribers:
            if subscriber == request_msg.sender:
                continue
            self.transport.send(
                Message(
                    sender=self.host,
                    destination=subscriber,
                    kind=MSG_PERF,
                    payload={
                        "service": self.service,
                        "replica": self.host,
                        "perf": perf,
                    },
                    size_bytes=96,
                )
            )

    # -- fault lifecycle ---------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: drop queued work and halt the service loop."""
        if self.crashed:
            return
        self.crashed = True
        self._queue.clear()
        self._busy = False
        if self._process.alive:
            self._process.interrupt("crash")

    def restart(self) -> None:
        """Come back after a crash with an empty queue (new incarnation)."""
        if not self.crashed:
            return
        self.crashed = False
        self._queue.clear()
        self._busy = False
        self._wakeup = None
        self._process = self.sim.spawn(self._run(), name=f"server.{self.host}")

    # -- lifecycle invariants ------------------------------------------------
    def lifecycle_leaks(self) -> Dict[str, List[Any]]:
        """Server state that must be empty/idle once traffic has drained."""
        leaks: Dict[str, List[Any]] = {}
        if self.crashed:
            return leaks  # a crashed incarnation holds no live obligations
        if self._queue:
            leaks["queued_requests"] = [m.msg_id for m, _t2 in self._queue]
        if self._busy:
            leaks["busy"] = [self.host]
        return leaks

    def __repr__(self) -> str:
        return (
            f"<TimingFaultServerHandler {self.host!r} queue={self.queue_length} "
            f"crashed={self.crashed}>"
        )


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------


@dataclass
class _PendingRequest:
    """Client-side bookkeeping for one outstanding request.

    ``expected`` holds the replicas a reply may still arrive from (the
    replicas actually addressed, including later retransmission targets);
    ``replied`` the replicas heard from so far.  Once a completed request
    has heard from every expected replica, no redundant reply can arrive
    any more and the record is dropped without waiting for the response
    timeout — the bound that keeps ``_pending`` sized by in-flight work.
    """

    request: MethodRequest
    t0: float
    t1: float
    event: Event
    decision: SelectionDecision
    completed: bool = False
    expired: bool = False
    expected: Set[str] = field(default_factory=set)
    replied: Set[str] = field(default_factory=set)
    # Replicas already charged an omission fault for this request (health
    # accounting) — a retry timeout and the final response timeout must
    # not both bill the same silence.
    faulted: Set[str] = field(default_factory=set)


class TimingFaultClientHandler(ProtocolHandler, RequestInterceptor):
    """Client-gateway half of the timing fault handler (paper §5.4).

    Parameters
    ----------
    sim, host, transport, group_comm:
        Simulation substrate and this client's host.
    interface:
        Interface of the replicated service (for marshalling sizes).
    qos:
        The client's QoS specification.
    policy:
        Replica-selection policy; defaults to the paper's
        :class:`DynamicSelectionPolicy` with single-crash tolerance and
        overhead compensation.
    window_size:
        The repository's sliding-window size ``l`` (paper default 5).
    bin_width_ms:
        Quantization grid of the empirical pmfs.
    selection_charge_ms:
        Simulated CPU time charged between request interception and
        transmission (covers marshalling + selection).  Also used as the
        ``δ`` for deadline compensation, keeping runs deterministic.
    response_timeout_factor:
        A request with no reply after ``factor × deadline`` completes as a
        timed-out failure (the paper's clients wait forever; a closed-loop
        simulation must not).  With an adaptive timeout quantile in
        effect, ``factor × deadline`` becomes the *ceiling* of the
        adaptive timeout instead.
    violation_callback:
        Invoked as ``callback(service, observed_probability, spec)`` when
        the observed timely frequency first drops below the QoS minimum.
    rng:
        Random generator handed to stochastic policies.
    classifier:
        Optional request classifier (§8 extension): performance history
        and models are kept per class key.  ``None`` keeps the paper's
        one-model-per-service design.
    gateway_window_size:
        When set, keep a sliding window of gateway delays per replica and
        model ``T_i`` as a distribution (§5.3.1 extension).
    probe_staleness_ms:
        When set, replicas whose records are older than this are probed
        out of band every ``probe_interval_ms`` (§8 extension).
    bootstrap_probes:
        When true, every group member is probed once at startup so each
        replica has a baseline round trip measured on this gateway's own
        clock before any replica-reported timing is trusted — the
        reference the clock-sanity deflation test compares against.
        Off by default (no extra traffic in legacy configurations).
    health_config:
        When set, the handler runs a per-replica
        :class:`~repro.health.HealthMonitor` fed by reply outcomes,
        omission timeouts, probe results and crash declarations; the
        selection context then carries the health view (quarantine
        exclusion + trust discounts) and the probe tick also serves the
        monitor's verification/re-admission probes.
    health_listener:
        Optional callback receiving every
        :class:`~repro.health.HealthEvent` (scenarios wire this to the
        Proteus manager — the paper's fault-notification path).
    adaptive_timeout_quantile:
        Quantile of the selected replicas' predicted ``R_i`` pmfs used as
        the response timeout, clamped to
        ``[deadline, factor × deadline]``.  ``None`` inherits the
        ``health_config`` default (and stays disabled without one), so
        legacy configurations keep the fixed timeout bit-for-bit.
    clock:
        The :class:`~repro.sim.hostclock.HostClock` of this gateway's
        host.  Every timestamp the handler takes (``t0``/``t1``/``t4``,
        probe send/receive times, staleness reads, health evidence) is
        read from it; scheduling stays on the kernel.  Defaults to a
        pristine clock, which reads identically to the kernel.
    overload_config:
        When set, the handler runs the overload subsystem
        (docs/ARCHITECTURE.md §6): a :class:`~repro.overload.LoadTracker`
        fed from the queue evidence on every reply/push/probe, the
        selection policy wrapped in a
        :class:`~repro.overload.GovernedSelectionPolicy` (redundancy
        cap), and an :class:`~repro.overload.AdmissionController` that
        fail-fast sheds hopeless requests and suppresses hedged
        retransmissions under pressure.
    """

    message_kinds = (MSG_REPLY, MSG_PERF, MSG_PROBE_REPLY)

    def __init__(
        self,
        sim: Simulator,
        host: str,
        transport: TransportAPI,
        group_comm: GroupCommunication,
        interface: ServiceInterface,
        qos: QoSSpec,
        policy: Optional[SelectionPolicy] = None,
        window_size: int = 5,
        bin_width_ms: float = 1.0,
        marshalling: Optional[MarshallingModel] = None,
        selection_charge_ms: float = 0.3,
        response_timeout_factor: float = 10.0,
        violation_callback: Optional[QoSViolationCallback] = None,
        min_violation_samples: int = 10,
        rng: Optional[np.random.Generator] = None,
        distance: Optional[Callable[[str], float]] = None,
        classifier: Optional[RequestClassifier] = None,
        gateway_window_size: Optional[int] = None,
        probe_staleness_ms: Optional[float] = None,
        probe_interval_ms: float = 200.0,
        bootstrap_probes: bool = False,
        estimator_factory: Optional[
            Callable[[InformationRepository], ResponseTimeEstimator]
        ] = None,
        health_config: Optional[HealthConfig] = None,
        health_listener: Optional[HealthListener] = None,
        adaptive_timeout_quantile: Optional[float] = None,
        overload_config: Optional[OverloadConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsCollector] = None,
        clock: Optional[HostClock] = None,
    ) -> None:
        if qos.service != interface.name:
            raise ValueError(
                f"QoS names service {qos.service!r} but the interface is "
                f"{interface.name!r}"
            )
        if selection_charge_ms < 0:
            raise ValueError(
                f"selection_charge_ms must be >= 0, got {selection_charge_ms}"
            )
        if response_timeout_factor <= 1:
            raise ValueError(
                "response_timeout_factor must exceed 1 (the deadline itself), "
                f"got {response_timeout_factor}"
            )
        if probe_staleness_ms is not None and probe_staleness_ms <= 0:
            raise ValueError(
                f"probe_staleness_ms must be > 0, got {probe_staleness_ms}"
            )
        if probe_interval_ms <= 0:
            raise ValueError(
                f"probe_interval_ms must be > 0, got {probe_interval_ms}"
            )
        if adaptive_timeout_quantile is None and health_config is not None:
            adaptive_timeout_quantile = health_config.adaptive_timeout_quantile
        if adaptive_timeout_quantile is not None and not (
            0.0 < adaptive_timeout_quantile <= 1.0
        ):
            raise ValueError(
                "adaptive_timeout_quantile must be in (0, 1], got "
                f"{adaptive_timeout_quantile}"
            )
        self.sim = sim
        self.clock = clock if clock is not None else HostClock(sim, host=host)
        self.host = host
        self.transport = transport
        self.group_comm = group_comm
        self.interface = interface
        self.service = interface.name
        self.qos = qos
        self.marshalling = marshalling or MarshallingModel()
        self.selection_charge_ms = float(selection_charge_ms)
        self.response_timeout_factor = float(response_timeout_factor)
        self.violation_callback = violation_callback
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics or MetricsCollector(keep_samples=False)
        self.rng = rng if rng is not None else seeded_generator(0)
        self.distance = distance
        self.classifier = classifier
        self.window_size = int(window_size)
        self.bin_width_ms = float(bin_width_ms)
        self.gateway_window_size = gateway_window_size
        self.probe_staleness_ms = probe_staleness_ms
        self.probe_interval_ms = float(probe_interval_ms)
        self.bootstrap_probes = bool(bootstrap_probes)
        self.adaptive_timeout_quantile = adaptive_timeout_quantile
        # Pluggable estimator construction (e.g. QueueScaledEstimator).
        self.estimator_factory = estimator_factory
        self.probes_sent = 0
        self.probes_expired = 0

        # Clock-sanity state (docs/ARCHITECTURE.md §10): replica-reported
        # measurements are admitted only when coherent with this
        # gateway's own same-clock observations.  The trusted round trips
        # come from probes — measured entirely on this host's clock.
        self.clock_rejections = 0
        self._trusted_rtt: Dict[str, float] = {}
        self._clock_sanity = (
            health_config is not None
            and health_config.clock_anomaly_after is not None
        )
        self._clock_slack_ms = (
            health_config.clock_slack_ms if health_config is not None else 1.0
        )
        self._clock_deflation_factor = (
            health_config.clock_deflation_factor
            if health_config is not None
            else 6.0
        )

        # Performance state is kept per request class.  The default class
        # always exists; `self.repository` / `self.estimator` alias it for
        # the paper's base design (and backward compatibility).
        self._repositories: Dict[str, InformationRepository] = {}
        self._estimators: Dict[str, ResponseTimeEstimator] = {}
        self._members: List[str] = []
        self.repository = self._repo_for(DEFAULT_CLASS)
        self.estimator = self._estimators[DEFAULT_CLASS]

        self.policy = policy or DynamicSelectionPolicy(
            crash_tolerance=1,
            compensate_overhead=True,
            fixed_overhead_ms=self.selection_charge_ms,
        )
        self.stats = TimingFailureStats(min_samples=min_violation_samples)
        self._pending: Dict[int, _PendingRequest] = {}
        # msg_id -> (send time, target replica)
        self._probes_in_flight: Dict[int, Tuple[float, str]] = {}
        self._violation_reported = False

        # Track the service group: seed the repositories from the current
        # view, follow future views, and subscribe to performance pushes.
        self._mgroup = group_comm.multicast_group(self.service)
        group_comm.on_view_change(self.service, host, self._on_view_change)
        self._members = self._mgroup.members()
        self._sync_repositories()
        self._send_subscription()

        # Health subsystem (docs/ARCHITECTURE.md §5): state machine fed by
        # the evidence this handler already collects.
        self.health: Optional[HealthMonitor] = None
        self._crash_unsubscribe: Optional[Callable[[], None]] = None
        # (msg_id, offending replicas) pairs — requests dispatched to a
        # quarantined replica.  Must stay empty; surfaced as a lifecycle
        # leak so the fault-injection auditor enforces the invariant.
        self.quarantined_traffic: List[Tuple[int, Tuple[str, ...]]] = []
        if health_config is not None:
            self.health = HealthMonitor(health_config, listener=health_listener)
            self.health.sync_members(self._members, self.clock.now)
            detector = getattr(group_comm, "failure_detector", None)
            if detector is not None:
                self._crash_unsubscribe = detector.on_crash(
                    self._on_crash_declared
                )
        if self.probe_staleness_ms is not None or self.health is not None:
            self.sim.call_in(
                self.probe_interval_ms, self._probe_tick, daemon=True
            )
        if self.bootstrap_probes:
            self.sim.call_in(0.0, self._bootstrap_probe_round, daemon=True)

        # Overload subsystem (docs/ARCHITECTURE.md §6): tracker always,
        # governor wraps the policy, admission controls the dispatch path.
        self.load_tracker: Optional[LoadTracker] = None
        self.admission: Optional[AdmissionController] = None
        self.sheds = 0
        if overload_config is not None:
            self.load_tracker = LoadTracker(
                overload_config.load,
                inflight_provider=self._inflight_copies,
            )
            if overload_config.governor is not None:
                self.policy = GovernedSelectionPolicy(
                    self.policy,
                    self.load_tracker,
                    overload_config.governor,
                )
            if overload_config.admission is not None:
                self.admission = AdmissionController(overload_config.admission)

    # -- per-class state -------------------------------------------------------
    def _repo_for(self, class_key: str) -> InformationRepository:
        repo = self._repositories.get(class_key)
        if repo is None:
            repo = InformationRepository(
                window_size=self.window_size,
                gateway_window_size=self.gateway_window_size,
            )
            repo.sync_members(self._members)
            self._repositories[class_key] = repo
            if self.estimator_factory is not None:
                estimator = self.estimator_factory(repo)
            else:
                estimator = ResponseTimeEstimator(
                    repo, bin_width_ms=self.bin_width_ms
                )
            self._estimators[class_key] = estimator
        return repo

    def _estimator_for(self, class_key: str) -> ResponseTimeEstimator:
        self._repo_for(class_key)
        return self._estimators[class_key]

    def _classify(self, request: MethodRequest) -> str:
        if self.classifier is None:
            return DEFAULT_CLASS
        return self.classifier(request)

    def request_classes(self) -> List[str]:
        """Class keys with performance state (always includes default)."""
        return sorted(self._repositories)

    def _sync_repositories(self) -> None:
        for class_key, repo in self._repositories.items():
            repo.sync_members(self._members)
            # Keep the estimator's versioned caches in step with the view:
            # entries for evicted replicas must not survive a re-join with
            # a fresh (restarted) record whose versions start over.
            self._estimators[class_key].prune(self._members)

    # -- membership tracking -----------------------------------------------------
    def _on_view_change(self, view: GroupView) -> None:
        joined = set(view.members) - set(self._members)
        self._members = list(view.members)
        self._sync_repositories()
        if self.health is not None:
            self.health.sync_members(self._members, self.clock.now)
        if self.load_tracker is not None:
            self.load_tracker.sync_members(self._members)
        self.tracer.emit(
            self.clock.kernel_now, f"client.{self.host}", "client.view",
            view=view.view_id, members=list(view.members),
        )
        if joined:
            # New replicas need this client's subscription too.
            self._send_subscription()

    def _on_crash_declared(self, host_name: str) -> None:
        """Failure-detector declaration: quarantine immediately.

        The monitor ignores hosts it does not track (e.g. other clients),
        so this can safely receive every declaration.
        """
        if self.health is not None:
            self.health.record_crash(host_name, self.clock.now)

    def _send_subscription(self) -> None:
        members = self._mgroup.members()
        if not members:
            return
        self._mgroup.send(
            Message(
                sender=self.host,
                destination="",
                kind=MSG_SUBSCRIBE,
                payload={"service": self.service, "client": self.host},
                size_bytes=64,
            )
        )

    # -- QoS -----------------------------------------------------------------
    def renegotiate_qos(self, new_spec: QoSSpec) -> None:
        """Adopt a new QoS specification at runtime (paper §4)."""
        if new_spec.service != self.service:
            raise ValueError(
                f"new spec names {new_spec.service!r}, handler serves "
                f"{self.service!r}"
            )
        self.qos = new_spec
        self.stats.reset()
        self._violation_reported = False

    # -- request path (RequestInterceptor) ------------------------------------------
    def submit(self, request: MethodRequest) -> Event:
        """Intercept a client invocation; returns its outcome event."""
        t0 = self.clock.now
        outcome_event = self.sim.event()
        signature = self.interface.method(request.method)
        call, marshal_cost = self.marshalling.marshal_request(request, signature)
        # Marshalling plus selection are CPU work on the client host,
        # charged before the request hits the wire (paper §5.3.3).
        self.sim.call_in(
            marshal_cost + self.selection_charge_ms,
            lambda: self._dispatch(request, call, t0, outcome_event),
        )
        return outcome_event

    def _dispatch(
        self,
        request: MethodRequest,
        call: MarshalledCall,
        t0: float,
        outcome_event: Event,
    ) -> int:
        """Select, transmit and register one request; returns its msg_id.

        Returns ``-1`` when the admission controller shed the request
        (no message was created, nothing hit the wire).
        """
        decision = self._decide(list(self._members), request)
        if self.load_tracker is not None:
            load = self.system_load()
            self.metrics.observe(
                "tf.load_index", load,
                labels={"client": self.host, "service": self.service},
            )
            if self.admission is not None and self.admission.should_shed(
                decision.meta, load
            ):
                self._shed(decision, load, t0, outcome_event)
                return -1
        message = Message(
            sender=self.host,
            destination="",
            kind=MSG_REQUEST,
            payload={"service": self.service, "call": call, "client": self.host},
            size_bytes=call.size_bytes,
        )
        pending = _PendingRequest(
            request=request,
            t0=t0,
            t1=self.clock.now,
            event=outcome_event,
            decision=decision,
        )
        self._pending[message.msg_id] = pending

        sent_to: Tuple[str, ...] = ()
        if decision.selected:
            try:
                sent_to = tuple(self._mgroup.send(message, decision.selected))
            except MembershipError:
                sent_to = ()
        if sent_to:
            pending.decision = SelectionDecision(
                selected=sent_to, meta=decision.meta
            )
            pending.expected.update(sent_to)
            self.metrics.observe(
                "tf.redundancy", len(sent_to),
                labels={"client": self.host, "service": self.service},
            )
        if (
            self.health is not None
            and sent_to
            and not decision.meta.get("quarantine_override", False)
        ):
            # Invariant: quarantined replicas receive no client traffic
            # (the override — every replica quarantined — is exempt).
            violated = tuple(
                r for r in sent_to if self.health.is_quarantined(r)
            )
            if violated:
                self.quarantined_traffic.append((message.msg_id, violated))
        self.tracer.emit(
            self.clock.kernel_now, f"client.{self.host}", "client.sent",
            msg_id=message.msg_id, selected=list(sent_to), t0=t0,
            bootstrap=decision.meta.get("bootstrap", False),
        )
        self.metrics.increment(
            "tf.requests", labels={"client": self.host, "service": self.service}
        )
        if not sent_to:
            # The request reached zero replicas (empty view or a racing
            # eviction): no reply can ever arrive, so fail fast as a
            # timeout instead of burning factor × deadline.
            self.sim.call_in(0.0, lambda: self._expire(message.msg_id))
            return message.msg_id
        # Arm the response timeout; it also keeps the kernel's run loop
        # alive while a reply is in flight.
        timeout_ms = self._response_timeout_ms(sent_to, self._classify(request))
        self.sim.call_in(
            timeout_ms, lambda: self._expire(message.msg_id)
        )
        return message.msg_id

    def _response_timeout_ms(
        self, selected: Tuple[str, ...], class_key: str
    ) -> float:
        """How long to wait for a reply before declaring the request dead.

        Legacy behaviour: a fixed ``factor × deadline``.  With an adaptive
        quantile configured, the timeout follows the model instead — the
        worst selected replica's predicted ``R_i`` at that quantile — so a
        silent replica is billed an omission after roughly how long a
        *working* one would plausibly take, not after a 10× grace period.
        Clamped to ``[deadline, factor × deadline]``: never give up before
        the deadline has actually passed, never wait longer than legacy.
        """
        ceiling = self.qos.deadline_ms * self.response_timeout_factor
        if self.adaptive_timeout_quantile is None or not selected:
            return ceiling
        estimator = self._estimator_for(class_key)
        quantiles: List[float] = []
        for replica in selected:
            try:
                pmf = estimator.response_time_pmf(replica)
            except KeyError:
                pmf = None  # mid-view-change: not tracked yet
            if pmf is None:
                return ceiling  # cold model: keep the generous legacy wait
            quantiles.append(pmf.quantile(self.adaptive_timeout_quantile))
        return min(ceiling, max(self.qos.deadline_ms, max(quantiles)))

    def _decide(
        self, replicas: List[str], request: MethodRequest
    ) -> SelectionDecision:
        if not replicas:
            return SelectionDecision(selected=(), meta={"no_replicas": True})
        class_key = self._classify(request)
        ctx = SelectionContext(
            replicas=replicas,
            estimator=self._estimator_for(class_key),
            qos=self.qos,
            now_ms=self.clock.now,
            rng=self.rng,
            distance=self.distance,
            health=self.health,
        )
        decision = self.policy.decide(ctx)
        if class_key != DEFAULT_CLASS:
            decision.meta["request_class"] = class_key
        # The wall-clock δ of this decision (paper Fig. 3 / §5.3.3): with
        # the incremental estimator cache hot, this is the number that
        # should collapse — export it so experiments can watch it.
        overhead_ms = decision.meta.get("overhead_ms")
        if overhead_ms is not None:
            self.metrics.observe(
                "tf.selection_overhead_ms", float(overhead_ms),
                labels={"client": self.host, "service": self.service},
            )
        return decision

    # -- overload ---------------------------------------------------------------
    def _inflight_copies(self) -> int:
        """Request copies addressed but not yet replied to (tracker input)."""
        return sum(
            len(p.expected - p.replied) for p in self._pending.values()
        )

    def system_load(self) -> float:
        """The load index over the active (non-quarantined) replica set."""
        if self.load_tracker is None:
            return 0.0
        names = self._members
        if self.health is not None:
            active = [r for r in names if not self.health.is_quarantined(r)]
            names = active or names
        return self.load_tracker.system_load(names)

    def _shed(
        self,
        decision: SelectionDecision,
        load: float,
        t0: float,
        outcome_event: Event,
    ) -> None:
        """Fail-fast reject one request before any copy hits the wire.

        Sheds are the third completion outcome: no ``_pending`` entry is
        created, no replica sees the request, and the response-time stats
        are left untouched (a shed is load control, not a timing fault).
        """
        self.sheds += 1
        self.metrics.increment(
            "tf.sheds", labels={"client": self.host, "service": self.service}
        )
        meta: SelectionMeta = {**decision.meta, "shed_load": load}
        outcome = ReplyOutcome(
            value=None,
            response_time_ms=max(0.0, self.clock.now - t0),
            timely=False,
            timed_out=False,
            replica=None,
            redundancy=0,
            request_id=-1,
            decision_meta=meta,
            shed=True,
        )
        self.tracer.emit(
            self.clock.kernel_now, f"client.{self.host}", "client.shed", load=load
        )
        outcome_event.succeed(outcome)

    # -- reply path ------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        if message.kind == MSG_PERF:
            perf: PerformanceUpdate = message.payload["perf"]
            self._record_perf(perf)
            return
        if message.kind == MSG_PROBE_REPLY:
            self._on_probe_reply(message)
            return
        # MSG_REPLY
        t4 = self.clock.now
        perf = message.payload["perf"]
        replica = message.payload["replica"]
        pending = self._pending.get(message.correlation_id)

        # Every reply — first or redundant — is mined for performance
        # data (paper §5.4.1), but only when the replica's reported
        # timings are coherent with this gateway's own same-clock
        # observations: one sample from a faulty clock poisons the
        # sliding windows for the next ``l`` requests.
        recorded = False
        coherent = True
        if pending is None:
            self._record_perf(perf)
        elif self._reply_coherent(pending, perf, t4):
            recorded = self._record_perf(perf)
        else:
            coherent = False
            self._note_clock_anomaly(replica, t4)
        if pending is not None:
            if recorded:
                gateway_delay = self._gateway_delay_sample(pending, perf, t4)
                self._record_gateway_delay(
                    replica, gateway_delay, t4,
                    class_key=self._classify(pending.request),
                )
                if self.health is not None:
                    self.health.record_coherent_sample(replica)
            pending.replied.add(replica)
            if self.health is not None and coherent:
                # Every coherent reply — first or redundant — is health
                # evidence: within the deadline a success, a straggler a
                # timing fault.  (A timely reply from a quarantined
                # replica proves liveness and re-admits it to probation.)
                # An *incoherent* reply already became clock-anomaly
                # evidence above; letting it also "prove liveness" would
                # re-admit the very replica the clock quarantine just
                # removed, flapping it through probation forever.
                if t4 - pending.t0 <= self.qos.deadline_ms:
                    self.health.record_success(replica, t4)
                else:
                    self.health.record_fault(replica, t4, kind="timing")

        if pending is None or pending.completed:
            self._maybe_forget(message.correlation_id)
            return  # redundant (or post-expiry) reply: discard

        pending.completed = True
        reply: MarshalledReply = message.payload["reply"]
        value, demarshal_cost = self.marshalling.demarshal_reply(reply)
        # The paper's tr = t4 − t0, both on this gateway's clock; clamped
        # at zero so a backward-stepped client clock can never admit a
        # negative response time (auditor invariant, ARCHITECTURE.md §10).
        response_time = max(0.0, t4 - pending.t0)
        timely = response_time <= self.qos.deadline_ms
        self._account(response_time)
        outcome = ReplyOutcome(
            value=value,
            response_time_ms=response_time,
            timely=timely,
            timed_out=False,
            replica=replica,
            redundancy=pending.decision.redundancy,
            request_id=message.correlation_id,
            decision_meta=pending.decision.meta.copy(),
        )
        self.tracer.emit(
            self.clock.kernel_now, f"client.{self.host}", "client.reply",
            msg_id=message.correlation_id, replica=replica,
            tr=response_time, timely=timely,
        )
        # The CORBA upcall happens after demarshalling.
        self.sim.call_in(
            demarshal_cost, lambda: outcome_event_succeed(pending.event, outcome)
        )
        self._maybe_forget(message.correlation_id)

    def _maybe_forget(self, msg_id: int) -> None:
        """Drop a completed record once every expected reply has arrived.

        Redundant replies from the remaining expected replicas are still
        mined for performance data, so the record stays until they have
        all been heard from (or the response timeout gives up on them).
        """
        pending = self._pending.get(msg_id)
        if pending is None or not pending.completed:
            return
        if pending.expected <= pending.replied:
            self._forget(msg_id)

    def _forget(self, msg_id: int) -> Optional[_PendingRequest]:
        """Remove a request record; notifies subclasses via the hook."""
        pending = self._pending.pop(msg_id, None)
        if pending is not None:
            self._on_request_forgotten(msg_id)
        return pending

    def _on_request_forgotten(self, msg_id: int) -> None:
        """Hook: a request left ``_pending`` (subclasses clean aliases)."""

    def _expire(self, msg_id: int) -> None:
        pending = self._forget(msg_id)
        if pending is None:
            return
        if self.health is not None:
            # Replicas addressed but never heard from are omission faults
            # (the `faulted` set keeps retry timeouts from billing twice).
            for replica in sorted(
                pending.expected - pending.replied - pending.faulted
            ):
                pending.faulted.add(replica)
                self.health.record_fault(replica, self.clock.now, kind="omission")
        if pending.completed:
            return  # normal case: reply already delivered; just forget it
        pending.completed = True
        pending.expired = True
        response_time = max(0.0, self.clock.now - pending.t0)
        self._account(response_time)
        self.metrics.increment(
            "tf.timeouts", labels={"client": self.host, "service": self.service}
        )
        outcome = ReplyOutcome(
            value=None,
            response_time_ms=response_time,
            timely=False,
            timed_out=True,
            replica=None,
            redundancy=pending.decision.redundancy,
            request_id=msg_id,
            decision_meta=pending.decision.meta.copy(),
        )
        self.tracer.emit(
            self.clock.kernel_now, f"client.{self.host}", "client.timeout", msg_id=msg_id
        )
        pending.event.succeed(outcome)

    # -- probing (§8 extension + health re-admission) ----------------------------
    def _probe_tick(self) -> None:
        due: Set[str] = set()
        if self.probe_staleness_ms is not None:
            for repo in self._repositories.values():
                for name in repo.replicas():
                    if (
                        repo.record(name).staleness(self.clock.now)
                        > self.probe_staleness_ms
                    ):
                        due.add(name)
        if self.health is not None:
            due.update(self.health.due_probes(self.clock.now))
        # A replica with a probe already in flight is not probed again —
        # neither by the staleness path (its window going stale mid-probe
        # must not double-probe it) nor by the health path.
        in_flight = {replica for _sent, replica in self._probes_in_flight.values()}
        for replica in sorted(due - in_flight):
            self._send_probe(replica)
        self.sim.call_in(self.probe_interval_ms, self._probe_tick, daemon=True)

    def _bootstrap_probe_round(self) -> None:
        """Probe every member once, unconditionally (startup baseline)."""
        in_flight = {
            replica for _sent, replica in self._probes_in_flight.values()
        }
        for replica in sorted(set(self._members) - in_flight):
            self._send_probe(replica)

    def _send_probe(self, replica: str) -> None:
        message = Message(
            sender=self.host,
            destination=replica,
            kind=MSG_PROBE,
            payload={"service": self.service, "client": self.host},
            size_bytes=64,
        )
        self._probes_in_flight[message.msg_id] = (self.clock.now, replica)
        self.probes_sent += 1
        if self.health is not None:
            self.health.note_probe_sent(replica, self.clock.now)
        self.transport.send(message)
        # A probe whose reply is lost must not pin its record forever:
        # give up on it after one probe interval (it will be re-probed if
        # the replica stays stale), keeping the map bounded.
        self.sim.call_in(
            self.probe_interval_ms,
            lambda: self._expire_probe(message.msg_id),
            daemon=True,
        )
        self.tracer.emit(
            self.clock.kernel_now, f"client.{self.host}", "client.probe", replica=replica
        )

    def quiesce_probes(self) -> None:
        """Expire every in-flight probe through the normal expiry path.

        Probe expiry is daemon work (a lost probe must not keep the
        simulation alive), so a finite-horizon run can stop with probes
        still in flight.  Drain-time audits call this before auditing:
        it applies exactly the bookkeeping the expiry timers would have,
        just without waiting out the probe interval.
        """
        for msg_id in sorted(self._probes_in_flight):
            self._expire_probe(msg_id)

    def _expire_probe(self, msg_id: int) -> None:
        entry = self._probes_in_flight.pop(msg_id, None)
        if entry is None:
            return
        self.probes_expired += 1
        if self.health is not None:
            self.health.record_probe_failure(entry[1], self.clock.now)

    def _on_probe_reply(self, message: Message) -> None:
        entry = self._probes_in_flight.pop(message.correlation_id, None)
        if entry is None:
            return
        sent_at, _target = entry
        replica = message.payload["replica"]
        # Measured entirely on this gateway's clock — the trusted T_i
        # baseline replica-reported timings are checked against.
        round_trip = max(0.0, self.clock.now - sent_at)
        self._trusted_rtt[replica] = round_trip
        queue_length = message.payload["queue_length"]
        for repo in self._repositories.values():
            if replica not in repo:
                continue
            self._record_gateway_delay_into(
                repo, replica, round_trip, self.clock.now
            )
            repo.record(replica).queue_length = queue_length
        if self.load_tracker is not None and replica in self._members:
            self.load_tracker.observe_probe(
                replica, queue_length, self.clock.now
            )
        if self.health is not None:
            self.health.record_probe_success(replica, self.clock.now)

    # -- clock-sanity admission (docs/ARCHITECTURE.md §10) -----------------------
    def _admit_perf_sample(
        self, perf: PerformanceUpdate
    ) -> Optional[PerformanceUpdate]:
        """Admission control for replica-reported measurements.

        A negative duration is physically impossible — no healthy clock
        measures one — so the whole sample is rejected rather than
        clamped: a clamped zero would still poison the window with a
        fabricated "instant" service.  Subclasses that deliberately
        trust faulty reports (the A18 naive baseline) override this.
        """
        if perf.service_time_ms < 0.0 or perf.queue_delay_ms < 0.0:
            return None
        return perf

    def _reply_coherent(
        self, pending: _PendingRequest, perf: PerformanceUpdate, t4: float
    ) -> bool:
        """Is a reply's reported timing coherent with our own clock?

        Two same-clock cross-checks, both free of any synchronization
        assumption because every trusted quantity (``t1``, ``t4``, probe
        round trips) was read on this gateway's clock:

        * **inflation** — the replica cannot have spent longer queueing
          and servicing than the whole round trip took
          (``tq + ts ≤ t4 − t1 + slack``);
        * **deflation** — a replica claiming near-zero ``tq + ts`` while
          the round trip dwarfs the probed (same-clock) round trip is
          under-reporting: its clock is slow, stopped, or stepped.  Only
          active with the clock-sanity health signal enabled, since it
          needs a trusted probe round trip to compare against.
        """
        reported = perf.queue_delay_ms + perf.service_time_ms
        if reported > t4 - pending.t1 + self._clock_slack_ms:
            return False
        if self._clock_sanity and reported < 1.0:
            trusted = self._trusted_rtt.get(perf.replica)
            if trusted is not None:
                implied = t4 - pending.t1 - reported
                ceiling = (
                    self._clock_deflation_factor * max(trusted, 1.0)
                    + self._clock_slack_ms
                )
                if implied > ceiling:
                    return False
        return True

    def _gateway_delay_sample(
        self, pending: _PendingRequest, perf: PerformanceUpdate, t4: float
    ) -> float:
        """The T_i sample a coherent reply contributes.

        ``t4 − t1`` is measured entirely on this gateway's clock;
        subtracting the replica's *duration* reports (never its absolute
        stamps) keeps constant skew out of the estimate by construction.
        """
        return t4 - pending.t1 - perf.queue_delay_ms - perf.service_time_ms

    def _note_clock_anomaly(self, replica: str, now_ms: float) -> None:
        """One physically impossible / incoherent sample was dropped."""
        self.clock_rejections += 1
        self.metrics.increment(
            "tf.clock_rejections",
            labels={"client": self.host, "service": self.service},
        )
        self.tracer.emit(
            self.clock.kernel_now, f"client.{self.host}",
            "client.clock-anomaly", replica=replica,
        )
        if self.health is not None:
            self.health.record_clock_anomaly(replica, now_ms)

    # -- accounting --------------------------------------------------------------
    def _record_perf(self, perf: PerformanceUpdate) -> bool:
        admitted = self._admit_perf_sample(perf)
        if admitted is None:
            self._note_clock_anomaly(perf.replica, self.clock.now)
            return False
        perf = admitted
        class_key = (
            self._classify(perf.request)
            if perf.request is not None
            else DEFAULT_CLASS
        )
        repo = self._repo_for(class_key)
        if perf.replica not in repo:
            return False  # evicted replica; a stale push must not resurrect it
        repo.record_performance(
            perf.replica,
            perf.service_time_ms,
            perf.queue_delay_ms,
            perf.queue_length,
            self.clock.now,
        )
        if self.load_tracker is not None:
            self.load_tracker.observe_reply(
                perf.replica,
                perf.queue_length,
                perf.queue_delay_ms,
                perf.service_time_ms,
                self.clock.now,
            )
        return True

    def _record_gateway_delay(
        self, replica: str, delay_ms: float, now_ms: float, class_key: str
    ) -> None:
        repo = self._repo_for(class_key)
        self._record_gateway_delay_into(repo, replica, delay_ms, now_ms)
        # The gateway delay is request-class independent (it is a property
        # of the network path): share it with the default class too, so
        # rarely-used classes still have a fresh T_i.
        if class_key != DEFAULT_CLASS:
            self._record_gateway_delay_into(
                self._repo_for(DEFAULT_CLASS), replica, delay_ms, now_ms
            )

    @staticmethod
    def _record_gateway_delay_into(
        repo: InformationRepository, replica: str, delay_ms: float, now_ms: float
    ) -> None:
        if replica in repo:
            repo.record_gateway_delay(replica, delay_ms, now_ms)

    def _account(self, response_time: float) -> None:
        failed = self.stats.record(response_time, self.qos.deadline_ms)
        self.metrics.observe(
            "tf.response_time_ms", response_time,
            labels={"client": self.host, "service": self.service},
        )
        if failed:
            self.metrics.increment(
                "tf.timing_failures",
                labels={"client": self.host, "service": self.service},
            )
        if self.stats.violates(self.qos):
            if not self._violation_reported and self.violation_callback:
                self.violation_callback(
                    self.service,
                    self.stats.observed_timely_probability,
                    self.qos,
                )
            self._violation_reported = True
        else:
            self._violation_reported = False

    # -- lifecycle invariants ------------------------------------------------
    def lifecycle_leaks(self) -> Dict[str, List[Any]]:
        """State that must be empty once the system has fully drained.

        Keys map invariant names to the offending entries; an empty dict
        means the handler holds no leaked request-lifecycle state.  The
        fault-injection auditor (:mod:`repro.faultinject.auditor`) calls
        this at drain time.
        """
        leaks: Dict[str, List[Any]] = {}
        if self._pending:
            leaks["pending"] = sorted(self._pending)
        if self._probes_in_flight:
            leaks["probes_in_flight"] = sorted(self._probes_in_flight)
        members = set(self._members)
        resurrected = sorted(
            {
                name
                for repo in self._repositories.values()
                for name in repo.replicas()
                if name not in members
            }
        )
        if resurrected:
            leaks["resurrected_replicas"] = resurrected
        # Timestamp discipline (ARCHITECTURE.md §10): every repository
        # stamp comes from this gateway's own clock, so no record can be
        # newer than the clock's current reading.  A future stamp means
        # a replica's absolute timestamp was admitted — the exact bug
        # class the clock plane exists to catch.
        now_local = self.clock.now
        future_stamped = sorted(
            {
                name
                for repo in self._repositories.values()
                for name in repo.replicas()
                if (repo.record(name).last_update_ms or 0.0)
                > now_local + 1e-6
            }
        )
        if future_stamped:
            leaks["future_stamped_records"] = future_stamped
        if self.quarantined_traffic:
            # The no-traffic-to-quarantined invariant (ARCHITECTURE.md
            # §5): any entry here is a selection-layer bug.
            leaks["quarantined_traffic"] = [
                (msg_id, list(replicas))
                for msg_id, replicas in self.quarantined_traffic
            ]
        return leaks

    def __repr__(self) -> str:
        return (
            f"<TimingFaultClientHandler {self.host!r} service={self.service!r} "
            f"pending={len(self._pending)}>"
        )


def outcome_event_succeed(event: Event, outcome: ReplyOutcome) -> None:
    """Deliver ``outcome`` unless the event already completed (expiry race)."""
    if not event.triggered:
        event.succeed(outcome)
