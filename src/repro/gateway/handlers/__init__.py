"""Protocol handlers loaded into AQuA gateways."""

from .active import ActiveReplicationClientHandler
from .passive import PassiveReplicationClientHandler, PrimaryBackupPolicy
from .retransmit import BestSinglePolicy, RetransmittingClientHandler
from .timing_fault import (
    DEFAULT_CLASS,
    MSG_PERF,
    MSG_PROBE,
    MSG_PROBE_REPLY,
    MSG_REPLY,
    MSG_REQUEST,
    MSG_SUBSCRIBE,
    OutcomeKind,
    PerformanceUpdate,
    ReplyOutcome,
    RequestClassifier,
    TimingFaultClientHandler,
    TimingFaultServerHandler,
    method_classifier,
)

__all__ = [
    "TimingFaultClientHandler",
    "TimingFaultServerHandler",
    "ActiveReplicationClientHandler",
    "PassiveReplicationClientHandler",
    "PrimaryBackupPolicy",
    "RetransmittingClientHandler",
    "BestSinglePolicy",
    "OutcomeKind",
    "PerformanceUpdate",
    "ReplyOutcome",
    "RequestClassifier",
    "method_classifier",
    "DEFAULT_CLASS",
    "MSG_REQUEST",
    "MSG_REPLY",
    "MSG_PERF",
    "MSG_SUBSCRIBE",
    "MSG_PROBE",
    "MSG_PROBE_REPLY",
]
