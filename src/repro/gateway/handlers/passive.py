"""Passive replication handler (prior AQuA work, Rubel [17] in the paper).

A single *primary* services all requests; the backups stand by and one of
them is promoted when the primary crashes.  For the stateless services the
timing-fault paper targets, promotion needs no state transfer — the next
member of the view simply becomes primary.

Implemented as a selection policy (send to the current primary only) so
the comparison experiments can run it through the same client handler and
measure the availability gap the paper motivates: while the primary is
down and not yet evicted from the view, every request is lost until the
membership layer installs a new view.
"""

from __future__ import annotations

from typing import Any, Optional

from ...core.selection import SelectionContext, SelectionDecision, SelectionPolicy
from .timing_fault import TimingFaultClientHandler

__all__ = ["PrimaryBackupPolicy", "PassiveReplicationClientHandler"]


class PrimaryBackupPolicy(SelectionPolicy):
    """Route every request to the view's current primary.

    The primary is the first member (in name order) of the live replica
    list, so all clients converge on the same primary without
    coordination, and promotion on eviction is automatic.
    """

    name = "primary-backup"

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        if not ctx.replicas:
            return SelectionDecision(selected=())
        primary = min(ctx.replicas)
        return SelectionDecision(selected=(primary,), meta={"primary": primary})


class PassiveReplicationClientHandler(TimingFaultClientHandler):
    """Client handler using primary/backup routing."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        if "policy" in kwargs and kwargs["policy"] is not None:
            raise ValueError(
                "PassiveReplicationClientHandler fixes its policy; "
                "do not pass one"
            )
        kwargs["policy"] = PrimaryBackupPolicy()
        super().__init__(*args, **kwargs)

    @property
    def primary(self) -> Optional[str]:
        """The replica currently acting as primary (None when none live)."""
        replicas = self.repository.replicas()
        return min(replicas) if replicas else None
