"""Local-area-network latency model.

The paper's system model (§3) assumes a LAN whose links "do not experience
frequent fluctuations in traffic, but ... may experience occasional periods
of high traffic".  :class:`LanModel` reproduces that: a one-way
gateway-to-gateway delay is composed of

* a fixed *stack* cost (Maestro/Ensemble + gateway marshalling, per message),
* a per-byte transmission term,
* a per-destination multicast overhead (the paper notes the delay "varies
  with ... the number of group members involved in the communication"),
* a jitter distribution, optionally Markov-modulated to create the
  occasional high-traffic bursts.

Hosts are registered by name.  A host can be marked down (crashed); the
transport drops deliveries to down hosts, which is how replica crashes
manifest at the network layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rng import RNGManager
from ..sim.random import Distribution, MarkovModulated, Normal

__all__ = ["Host", "LanModel", "LinkProfile", "bursty_jitter"]


@dataclass
class Host:
    """A machine on the simulated LAN."""

    name: str
    up: bool = True
    # Free-form placement tag, used by nearest-replica baselines.
    zone: str = "default"

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass(frozen=True)
class LinkProfile:
    """Latency parameters for one (ordered) host pair or the LAN default.

    Attributes
    ----------
    stack_ms:
        Fixed per-message cost of the protocol stack (both ends), ms.
    per_kb_ms:
        Transmission cost per kilobyte, ms.
    per_member_ms:
        Extra cost per additional multicast destination, ms.
    jitter:
        Additive random jitter distribution, ms.
    loss_probability:
        Probability that a message on this link is silently lost.  The
        paper's LAN is reliable (0.0); omission-fault ablations raise it.
    """

    stack_ms: float = 1.25
    per_kb_ms: float = 0.08
    per_member_ms: float = 0.05
    jitter: Distribution = field(default_factory=lambda: Normal(0.3, 0.15))
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )


def bursty_jitter(
    base_mu: float = 0.3,
    base_sigma: float = 0.15,
    burst_mu: float = 8.0,
    burst_sigma: float = 3.0,
    p_enter_burst: float = 0.005,
    p_exit_burst: float = 0.15,
) -> MarkovModulated:
    """Jitter with occasional high-traffic bursts (paper §3)."""
    return MarkovModulated(
        Normal(base_mu, base_sigma),
        Normal(burst_mu, burst_sigma),
        p_enter_burst=p_enter_burst,
        p_exit_burst=p_exit_burst,
    )


class LanModel:
    """Topology + latency model for the simulated LAN.

    Parameters
    ----------
    streams:
        Named-stream manager (:class:`repro.rng.RNGManager`); each
        ordered host pair draws jitter from its own ``"lan.<src>-><dst>"``
        substream so link behaviours are independent and adding a host
        never perturbs existing links (docs/REPRODUCIBILITY.md).
    default_profile:
        Latency profile used for pairs without an explicit override.
    """

    def __init__(
        self,
        streams: RNGManager,
        default_profile: Optional[LinkProfile] = None,
        shared_congestion: Optional[Distribution] = None,
    ) -> None:
        self._streams = streams
        self.default_profile = default_profile or LinkProfile()
        self._hosts: Dict[str, Host] = {}
        self._profiles: Dict[Tuple[str, str], LinkProfile] = {}
        # Severed ordered pairs -> severance count.  Reference-counted so
        # overlapping partitions compose: a link stays dead until every
        # cut covering it has healed (repro.faultinject.partition).
        self._severed: Dict[Tuple[str, str], int] = {}
        # LAN-wide correlated congestion (e.g. a shared switch): one
        # distribution sampled from a single stream for EVERY message,
        # so simultaneous transfers see correlated extra delay.  Breaks
        # the independence assumption of the paper's Equation 1 — used by
        # the model-calibration ablation, not by the base reproduction.
        self.shared_congestion = shared_congestion

    # -- topology ----------------------------------------------------------
    def add_host(self, name: str, zone: str = "default") -> Host:
        """Register a host; names must be unique on the LAN."""
        if name in self._hosts:
            raise ValueError(f"host {name!r} already registered")
        host = Host(name=name, zone=zone)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a registered host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def hosts(self) -> List[Host]:
        """All registered hosts in registration order."""
        return list(self._hosts.values())

    def has_host(self, name: str) -> bool:
        """Whether a host with this name exists."""
        return name in self._hosts

    def set_link_profile(self, src: str, dst: str, profile: LinkProfile) -> None:
        """Override the latency profile for the ordered pair (src, dst)."""
        self.host(src)
        self.host(dst)
        self._profiles[(src, dst)] = profile

    def link_profile(self, src: str, dst: str) -> LinkProfile:
        """Profile in effect for the ordered pair (default if no override)."""
        return self._profiles.get((src, dst), self.default_profile)

    # -- availability --------------------------------------------------------
    def mark_down(self, name: str) -> None:
        """Crash a host: future deliveries to it are dropped."""
        self.host(name).up = False

    def mark_up(self, name: str) -> None:
        """Bring a host back (recovery)."""
        self.host(name).up = True

    def is_up(self, name: str) -> bool:
        """Whether the host is currently up."""
        return self.host(name).up

    # -- connectivity --------------------------------------------------------
    def sever_link(self, src: str, dst: str) -> None:
        """Cut the ordered link ``src`` → ``dst`` (reference-counted)."""
        self.host(src)
        self.host(dst)
        key = (src, dst)
        self._severed[key] = self._severed.get(key, 0) + 1

    def heal_link(self, src: str, dst: str) -> None:
        """Undo one severance of ``src`` → ``dst`` (idempotent at zero)."""
        key = (src, dst)
        count = self._severed.get(key, 0)
        if count <= 1:
            self._severed.pop(key, None)
        else:
            self._severed[key] = count - 1

    def reachable(self, src: str, dst: str) -> bool:
        """Whether traffic ``src`` → ``dst`` can currently cross the LAN.

        Unknown hosts are considered reachable — connectivity only ever
        *narrows* what an up, registered pair could do.
        """
        return (src, dst) not in self._severed

    def severed_links(self) -> List[Tuple[str, str]]:
        """Every currently severed ordered pair (sorted)."""
        return sorted(self._severed)

    # -- latency -----------------------------------------------------------
    def one_way_delay(
        self,
        src: str,
        dst: str,
        size_bytes: int = 256,
        group_size: int = 1,
    ) -> float:
        """Sample the one-way delay in ms for a message ``src`` → ``dst``.

        ``group_size`` is the number of destinations of the multicast this
        message is part of; larger groups pay a small per-member overhead,
        matching the paper's observation that gateway-to-gateway delay grows
        with the number of group members.
        """
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        profile = self.link_profile(src, dst)
        rng = self._streams.stream(f"lan.{src}->{dst}")
        jitter = max(0.0, profile.jitter.sample(rng))
        delay = (
            profile.stack_ms
            + profile.per_kb_ms * (size_bytes / 1024.0)
            + profile.per_member_ms * (group_size - 1)
            + jitter
        )
        if self.shared_congestion is not None:
            shared_rng = self._streams.stream("lan.shared-congestion")
            delay += max(0.0, self.shared_congestion.sample(shared_rng))
        return max(0.0, delay)

    def should_drop(self, src: str, dst: str) -> bool:
        """Sample whether a message on (src, dst) is lost in transit."""
        profile = self.link_profile(src, dst)
        if profile.loss_probability <= 0.0:
            return False
        rng = self._streams.stream(f"lan.loss.{src}->{dst}")
        return bool(rng.random() < profile.loss_probability)

    def zone_distance(self, src: str, dst: str) -> float:
        """Static "distance" between hosts, for nearest-replica baselines.

        Same zone → 0; different zones → 1.  Deterministic and cheap; the
        nearest baseline (Heidemann-style) only needs an ordering.
        """
        return 0.0 if self.host(src).zone == self.host(dst).zone else 1.0

    def __repr__(self) -> str:
        up = sum(1 for h in self._hosts.values() if h.up)
        return f"<LanModel hosts={len(self._hosts)} up={up}>"
