"""Message types carried by the simulated LAN.

Messages are immutable envelopes: a payload plus addressing and accounting
metadata.  The gateway layers (``repro.gateway``) put marshalled CORBA-style
requests/replies inside; the group layer (``repro.group``) wraps them again
for multicast delivery — mirroring the AQuA / Maestro-Ensemble layering of
the paper without bit-level encoding.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple

__all__ = ["Message", "next_message_id", "reset_message_ids"]

_message_counter = itertools.count(1)


def next_message_id() -> int:
    """Process-wide unique message identifier."""
    return next(_message_counter)


def reset_message_ids() -> None:
    """Restart the msg_id sequence from 1.

    Message ids only need to be unique within one simulation; batch
    runners (the chaos campaign) reset between scenarios so any id that
    surfaces in a report is independent of which process — and how many
    prior scenarios — produced it.
    """
    global _message_counter
    _message_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Message:
    """An envelope travelling between two hosts.

    Slotted: simulations at fleet scale allocate one envelope per hop,
    so instances carry no per-object ``__dict__``.

    Attributes
    ----------
    sender:
        Name of the sending host.
    destination:
        Name of the receiving host.
    kind:
        Machine-readable type tag, e.g. ``"request"``, ``"reply"``,
        ``"perf-update"``, ``"membership"``.
    payload:
        Arbitrary structured content.  By convention a dict.
    size_bytes:
        Simulated wire size; feeds the transmission-delay model.
    msg_id:
        Unique id assigned at construction.
    correlation_id:
        Id tying replies to their request (0 = uncorrelated).
    headers:
        Optional extra metadata (e.g. multicast group name).
    """

    sender: str
    destination: str
    kind: str
    payload: Any = None
    size_bytes: int = 256
    msg_id: int = field(default_factory=next_message_id)
    correlation_id: int = 0
    headers: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")

    def with_destination(self, destination: str) -> "Message":
        """A copy addressed to ``destination`` (same msg_id: one multicast)."""
        return replace(self, destination=destination)

    def reply_to(self) -> str:
        """The host a reply should be addressed to."""
        return self.sender

    def header(self, key: str, default: Any = None) -> Any:
        """Look up a header value by key."""
        for header_key, value in self.headers:
            if header_key == key:
                return value
        return default

    def with_header(self, key: str, value: Any) -> "Message":
        """A copy with ``key: value`` appended to the headers."""
        return replace(self, headers=self.headers + ((key, value),))

    def describe(self) -> Dict[str, Any]:
        """Compact dict for tracing."""
        return {
            "msg_id": self.msg_id,
            "msg_kind": self.kind,
            "from": self.sender,
            "to": self.destination,
            "size": self.size_bytes,
            "corr": self.correlation_id,
        }
