"""Simulated LAN: hosts, latency model, messages and transport."""

from .lan import Host, LanModel, LinkProfile, bursty_jitter
from .message import Message, next_message_id
from .transport import Receiver, Transport, TransportAPI

__all__ = [
    "Host",
    "LanModel",
    "LinkProfile",
    "bursty_jitter",
    "Message",
    "next_message_id",
    "Receiver",
    "Transport",
    "TransportAPI",
]
