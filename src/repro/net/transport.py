"""Message transport over the simulated LAN.

:class:`Transport` connects hosts to the :class:`~repro.net.lan.LanModel`:
components register a receive callback per host, and ``send`` /
``multicast`` deliver messages after a sampled one-way delay.  Deliveries
addressed to a crashed host are dropped silently — exactly the behaviour a
sender on a real LAN observes, and the reason the paper needs redundant
selection and group-membership crash notification.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Sequence

from ..sim.kernel import Simulator
from ..sim.trace import NullTracer, Tracer
from .lan import LanModel
from .message import Message

__all__ = ["Receiver", "TransportAPI", "Transport"]

Receiver = Callable[[Message], None]


class TransportAPI(Protocol):
    """Structural interface of a message transport.

    Satisfied by :class:`Transport` and by decorators such as
    :class:`repro.faultinject.transport.FaultyTransport`; gateways,
    handlers and the group layer annotate against this so a
    fault-injecting wrapper slots in without inheritance.
    """

    def bind(self, host_name: str, receiver: Receiver) -> None:
        """Attach the receive callback for ``host_name``."""
        ...

    def unbind(self, host_name: str) -> None:
        """Detach the receiver for ``host_name`` (idempotent)."""
        ...

    def is_bound(self, host_name: str) -> bool:
        """Whether a receiver is attached for ``host_name``."""
        ...

    def send(self, message: Message, group_size: int = 1) -> float:
        """Send one unicast message; returns a delay in milliseconds."""
        ...

    def multicast(
        self, message: Message, destinations: Sequence[str]
    ) -> List[float]:
        """Send copies of ``message`` to every destination."""
        ...


class Transport:
    """Delivers messages between registered host endpoints.

    Parameters
    ----------
    sim:
        Simulation kernel (provides the clock and scheduling).
    lan:
        Latency/topology model.
    tracer:
        Optional structured tracer; emits ``net.sent`` / ``net.delivered`` /
        ``net.dropped`` records.
    """

    def __init__(
        self,
        sim: Simulator,
        lan: LanModel,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.lan = lan
        self.tracer = tracer if tracer is not None else NullTracer()
        self._receivers: Dict[str, Receiver] = {}
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.lost_count = 0

    # -- wiring --------------------------------------------------------------
    def bind(self, host_name: str, receiver: Receiver) -> None:
        """Attach the receive callback for ``host_name``."""
        self.lan.host(host_name)  # validate the host exists
        if host_name in self._receivers:
            raise ValueError(f"host {host_name!r} already bound")
        self._receivers[host_name] = receiver

    def unbind(self, host_name: str) -> None:
        """Detach the receiver for ``host_name`` (idempotent)."""
        self._receivers.pop(host_name, None)

    def is_bound(self, host_name: str) -> bool:
        """Whether a receiver is attached for ``host_name``."""
        return host_name in self._receivers

    # -- sending -------------------------------------------------------------
    def send(self, message: Message, group_size: int = 1) -> float:
        """Send one unicast message; returns the sampled one-way delay (ms).

        The message is delivered to the destination's receiver after the
        delay unless the destination is down (or goes down before the
        delivery instant), in which case it is dropped.
        """
        self.sent_count += 1
        delay = self.lan.one_way_delay(
            message.sender,
            message.destination,
            size_bytes=message.size_bytes,
            group_size=group_size,
        )
        if not self.lan.reachable(message.sender, message.destination):
            # The link is severed by a partition: nothing crosses, not
            # even copies a fault injector scheduled before the cut.
            self.lost_count += 1
            self.tracer.emit(
                self.sim.now, "transport", "net.partitioned",
                **message.describe(),
            )
            return delay
        if self.lan.should_drop(message.sender, message.destination):
            # Omission fault: the message vanishes in transit.
            self.lost_count += 1
            self.tracer.emit(
                self.sim.now, "transport", "net.lost", **message.describe()
            )
            return delay
        self.tracer.emit(
            self.sim.now, "transport", "net.sent", delay=delay, **message.describe()
        )
        self.sim.call_in(delay, lambda: self._deliver(message))
        return delay

    def multicast(
        self, message: Message, destinations: Sequence[str]
    ) -> List[float]:
        """Send copies of ``message`` to every destination.

        All copies share the original ``msg_id`` (one logical multicast) but
        each experiences its own link delay — the group pays the
        per-member overhead of the larger destination set.
        Returns the per-destination delays in destination order.
        """
        if not destinations:
            raise ValueError("multicast needs at least one destination")
        delays: List[float] = []
        group_size = len(destinations)
        for destination in destinations:
            copy = message.with_destination(destination)
            delays.append(self.send(copy, group_size=group_size))
        return delays

    # -- delivery ------------------------------------------------------------
    def _deliver(self, message: Message) -> None:
        if not self.lan.is_up(message.destination):
            self.dropped_count += 1
            self.tracer.emit(
                self.sim.now, "transport", "net.dropped",
                reason="host-down", **message.describe(),
            )
            return
        receiver = self._receivers.get(message.destination)
        if receiver is None:
            self.dropped_count += 1
            self.tracer.emit(
                self.sim.now, "transport", "net.dropped",
                reason="no-receiver", **message.describe(),
            )
            return
        self.delivered_count += 1
        self.tracer.emit(
            self.sim.now, "transport", "net.delivered", **message.describe()
        )
        receiver(message)

    def __repr__(self) -> str:
        return (
            f"<Transport sent={self.sent_count} delivered={self.delivered_count} "
            f"dropped={self.dropped_count}>"
        )
