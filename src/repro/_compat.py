"""Version-compatibility shims for the strictly typed packages.

The repository supports Python 3.10+, so typing features that landed in
3.11 are re-exported here with a fallback.  Import ``assert_never`` from
this module, never from :mod:`typing` directly.
"""

from __future__ import annotations

import sys
from typing import NoReturn

__all__ = ["assert_never"]

if sys.version_info >= (3, 11):
    from typing import assert_never
else:

    def assert_never(value: NoReturn) -> NoReturn:
        """Exhaustiveness backstop for branches over closed types.

        mypy narrows the argument to ``Never`` when every member of an
        enum/Literal has been handled; reaching this at runtime means a
        case was silently missed.
        """
        raise AssertionError(f"unhandled value: {value!r}")
