#!/usr/bin/env python
"""Policy shootout: the paper's algorithm vs. the related-work baselines.

Runs the same two-client workload (deadline 140 ms, Pc >= 0.9) under every
selection policy in :mod:`repro.core.baselines` plus the paper's dynamic
policy, and prints a league table.  This regenerates ablation A1 of
DESIGN.md interactively.

Run:  python examples/policy_shootout.py
"""

from repro.experiments.policy_comparison import run


def main() -> None:
    print("Running each policy on the Fig. 4 workload "
          "(deadline 140 ms, Pc >= 0.9, 3 seeds)...\n")
    results = run(deadline_ms=140.0, min_probability=0.9, seeds=(0, 1, 2))

    header = (f"{'policy':<22} {'failures':>9} {'budget?':>8} "
              f"{'redundancy':>11} {'response':>9}")
    print(header)
    print("-" * len(header))
    budget = 0.10
    for result in sorted(results, key=lambda r: r.failure_probability):
        meets = "yes" if result.failure_probability <= budget else "NO"
        print(f"{result.policy:<22} {result.failure_probability:>9.3f} "
              f"{meets:>8} {result.mean_redundancy:>11.2f} "
              f"{result.mean_response_ms:>7.1f}ms")

    dynamic = next(r for r in results if r.policy == "dynamic (paper)")
    broadcast = next(r for r in results if r.policy == "all-replicas")
    print(f"\nThe paper's policy held the 10% budget with "
          f"{dynamic.mean_redundancy:.1f} replicas/request — "
          f"{broadcast.mean_redundancy / dynamic.mean_redundancy:.1f}x less "
          f"server load than active replication.")


if __name__ == "__main__":
    main()
