#!/usr/bin/env python
"""Search engine: mixed QoS tiers sharing one replica pool.

A replicated search backend serves three client tiers at once:

* ``premium``  — 150 ms deadline at Pc >= 0.9 (paying customers),
* ``standard`` — 200 ms deadline at Pc >= 0.5,
* ``batch``    — 400 ms deadline, best effort (Pc = 0).

All share seven replicas, one of which sits on a host that becomes 3x
slower halfway through (a noisy neighbour).  The point of the paper's
per-client handlers is visible here: each tier independently converges on
the redundancy *it* needs, and everyone routes around the slow host
without coordination.

Run:  python examples/search_engine.py
"""

from repro import QoSSpec, Scenario, ScenarioConfig
from repro.replica.load import ConstantLoad, StepLoad
from repro.sim.random import Exponential


def main() -> None:
    def load_factory(host: str):
        if host == "replica-4":
            # Co-located batch job kicks in at t = 15 s.
            return StepLoad([(15_000.0, 3.0)], initial=1.0)
        return ConstantLoad(1.0)

    config = ScenarioConfig(seed=23, num_replicas=7, load_factory=load_factory)
    scenario = Scenario(config)

    tiers = {
        "premium": QoSSpec("search", deadline_ms=150.0, min_probability=0.9),
        "standard": QoSSpec("search", deadline_ms=200.0, min_probability=0.5),
        "batch": QoSSpec("search", deadline_ms=400.0, min_probability=0.0),
    }
    clients = {
        tier: scenario.add_client(
            f"{tier}-client",
            qos,
            num_requests=60,
            think_time=Exponential(600.0),
        )
        for tier, qos in tiers.items()
    }

    scenario.run_to_completion()

    print("Mixed QoS tiers on one replica pool "
          "(replica-4 goes 3x slower at t=15 s)\n")
    header = (f"{'tier':<10} {'deadline':>9} {'Pc':>5} {'failures':>9} "
              f"{'budget':>7} {'redundancy':>11} {'response':>9}")
    print(header)
    print("-" * len(header))
    for tier, client in clients.items():
        qos = tiers[tier]
        summary = client.summary()
        print(f"{tier:<10} {qos.deadline_ms:>7.0f}ms {qos.min_probability:>5.2f} "
              f"{summary.failure_probability:>9.3f} "
              f"{qos.max_failure_probability:>7.2f} "
              f"{summary.mean_redundancy:>11.2f} "
              f"{summary.mean_response_ms:>7.1f}ms")

    # How often did each tier touch the degraded replica after the step?
    print("\nSelection avoids the slow host once its updates reflect the "
          "new load:")
    for tier, client in clients.items():
        handler = scenario.handlers[f"{tier}-client"]
        probability = handler.estimator.probability_by(
            "replica-4", tiers[tier].deadline_ms
        )
        print(f"  {tier:<10} models F_replica-4(deadline) = "
              f"{probability if probability is not None else float('nan'):.3f}")

    for tier, client in clients.items():
        budget = tiers[tier].max_failure_probability
        assert client.summary().failure_probability <= budget, tier
    print("\nEvery tier stayed within its own failure budget.")


if __name__ == "__main__":
    main()
