#!/usr/bin/env python
"""Radar tracking: a time-critical client surviving a replica crash.

The paper motivates its work with "stateless applications such as search
engines and radar-tracking applications".  A radar track processor cannot
tolerate gaps: every position update must be correlated within a hard
window or the track is lost.  This example runs a tracking client with a
tight 150 ms deadline at Pc >= 0.95 while the *most responsive* replica
crashes mid-mission — precisely the case Algorithm 1's always-include-
the-best-but-never-count-it rule was built for — and then recovers.

Run:  python examples/radar_tracking.py
"""

from repro import QoSSpec, Scenario, ScenarioConfig
from repro.sim.random import Constant


def main() -> None:
    config = ScenarioConfig(
        seed=11,
        num_replicas=5,
        service="radar-track",
        method="correlate",
        # Track correlation is cheaper and less noisy than the generic
        # search workload.
        service_mean_ms=70.0,
        service_sigma_ms=25.0,
        trace=True,
    )
    scenario = Scenario(config)
    tracker = scenario.add_client(
        "tracker-1",
        QoSSpec("radar-track", deadline_ms=150.0, min_probability=0.95),
        num_requests=80,
        think_time=Constant(250.0),  # 4 Hz update rate
    )

    # Mission timeline: the best replica dies at t=6 s, returns at t=14 s.
    scenario.schedule_crash("replica-1", at_ms=6_000.0, recover_at_ms=14_000.0)

    scenario.run_to_completion()
    summary = tracker.summary()

    print("Radar tracking under a mid-mission crash")
    print(f"  updates processed  : {summary.requests}")
    print(f"  missed deadlines   : {summary.timing_failures} "
          f"(observed probability {summary.failure_probability:.3f}, "
          f"budget 0.050)")
    print(f"  lost updates       : {summary.timeouts} (no reply at all)")
    print(f"  mean redundancy    : {summary.mean_redundancy:.2f} of 5")

    # Reconstruct the crash window from the trace.
    crash_events = scenario.tracer.of_kind("fault.crash")
    evictions = scenario.tracer.of_kind("group.evict")
    print(f"\n  crash injected at  : {crash_events[0].time / 1000:.2f} s")
    if evictions:
        detection = evictions[0].time - crash_events[0].time
        print(f"  eviction after     : {detection:.0f} ms "
              "(failure-detection latency the redundancy must cover)")

    outcomes_during_outage = [
        o for o in tracker.outcomes
        if 6_000.0 <= o.response_time_ms + 6_000.0 <= 14_000.0
    ]
    replicas_seen = {o.replica for o in tracker.outcomes if o.replica}
    print(f"  replicas that answered over the run: {sorted(replicas_seen)}")

    assert summary.timeouts == 0, "redundancy should mask the crash"
    print("\nNo update was lost: the selected sets absorbed the crash of "
          "their best member, as Equation 3 guarantees.")


if __name__ == "__main__":
    main()
