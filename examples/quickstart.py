#!/usr/bin/env python
"""Quickstart: one QoS-aware client against seven replicas.

Builds the paper's testbed (seven replicas, Normal(100 ms, 50 ms) service
delay), attaches a client that wants replies within 160 ms with
probability >= 0.9, runs fifty requests, and prints what the timing fault
handler did about it.

Run:  python examples/quickstart.py
"""

from repro import QoSSpec, Scenario, ScenarioConfig


def main() -> None:
    scenario = Scenario(ScenarioConfig(seed=7, num_replicas=7))
    client = scenario.add_client(
        "client-1",
        QoSSpec("search", deadline_ms=160.0, min_probability=0.9),
        num_requests=50,
    )
    scenario.run_to_completion()

    summary = client.summary()
    print("Quickstart: 50 requests, deadline 160 ms, Pc >= 0.9")
    print(f"  timing failures       : {summary.timing_failures}/50 "
          f"(observed probability {summary.failure_probability:.3f}, "
          f"budget 0.100)")
    print(f"  mean response time    : {summary.mean_response_ms:.1f} ms")
    print(f"  mean replicas selected: {summary.mean_redundancy:.2f} of 7")

    handler = scenario.handlers["client-1"]
    print("\nPer-replica view of the gateway information repository:")
    for name in handler.repository.replicas():
        record = handler.repository.record(name)
        probability = handler.estimator.probability_by(name, 160.0)
        print(f"  {name}: F(160ms) = {probability:.3f}  "
              f"T = {record.gateway_delay_ms:.2f} ms  "
              f"queue = {record.queue_length}")

    assert summary.failure_probability <= 0.1, "QoS should be met"
    print("\nQoS met: observed failures stayed within the client's budget.")


if __name__ == "__main__":
    main()
