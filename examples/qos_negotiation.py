#!/usr/bin/env python
"""QoS negotiation: reacting to the violation callback.

The paper's contract (§4, §5.4.2): when the system cannot sustain the
requested probability of timely responses, the client is told through a
callback and "can then either choose to renegotiate its QoS specification
or issue its requests to the service at a later time".

This example scripts that loop.  The client starts with an impossible
demand (60 ms deadline against 100 ms mean service time).  The handler
detects the violation and fires the callback; the client renegotiates to
a realistic 180 ms deadline mid-run and finishes within budget.

Run:  python examples/qos_negotiation.py
"""

from repro import QoSSpec, Scenario, ScenarioConfig


def main() -> None:
    scenario = Scenario(ScenarioConfig(seed=5, num_replicas=7))
    service = scenario.config.service

    impossible = QoSSpec(service, deadline_ms=60.0, min_probability=0.9)
    realistic = QoSSpec(service, deadline_ms=180.0, min_probability=0.9)

    notifications = []

    def on_violation(service_name, observed_probability, spec):
        notifications.append((scenario.sim.now, observed_probability))
        # Renegotiate on the spot, as the paper's client may.
        handler.renegotiate_qos(realistic)

    client = scenario.add_client(
        "client-1",
        impossible,
        num_requests=60,
        violation_callback=on_violation,
    )
    handler = scenario.handlers["client-1"]

    scenario.run_to_completion()

    print("QoS negotiation driven by the violation callback\n")
    print(f"initial spec : {impossible.deadline_ms:.0f} ms at "
          f"Pc >= {impossible.min_probability}")
    if notifications:
        when, observed = notifications[0]
        print(f"callback     : at t = {when / 1000:.1f} s, observed timely "
              f"probability {observed:.2f} < 0.90")
    print(f"renegotiated : {realistic.deadline_ms:.0f} ms at "
          f"Pc >= {realistic.min_probability}")

    # Outcomes after renegotiation are judged against the new deadline.
    post = [o for o in client.outcomes if o.decision_meta.get("bootstrap") is False]
    late_phase = client.outcomes[len(client.outcomes) // 2:]
    failures = sum(1 for o in late_phase if not o.timely)
    print(f"\nsecond half of the run: {failures}/{len(late_phase)} timing "
          f"failures ({failures / len(late_phase):.2f} observed, 0.10 budget)")

    assert notifications, "the impossible spec must trigger the callback"
    assert failures / len(late_phase) <= 0.10
    print("\nAfter renegotiation the service sustains the requested QoS.")


if __name__ == "__main__":
    main()
