#!/usr/bin/env python
"""Tour of the paper's §8 extensions, all enabled at once.

A trading-analytics service exports two methods — a cheap ``process``
quote lookup and a heavy ``analyze`` risk computation — on *specialist*
replicas (half are fast at one method, half at the other).  The client
enables:

* per-method request classification (separate performance models),
* active probing (its workload has idle stretches),
* a gateway-delay sliding window (the office LAN is bursty),
* two-crash tolerance (it is paranoid).

Run:  python examples/extensions_tour.py
"""

from repro import QoSSpec, Scenario, ScenarioConfig
from repro.core.selection import DynamicSelectionPolicy
from repro.gateway.handlers.timing_fault import method_classifier
from repro.replica.load import ServiceProfile
from repro.sim.random import Constant, Normal

FAST = Normal(35.0, 10.0)
SLOW = Normal(180.0, 30.0)


def specialist_profile(host: str) -> ServiceProfile:
    index = int(host.rsplit("-", 1)[1])
    if index % 2 == 1:
        return ServiceProfile(default=FAST, per_method={"analyze": SLOW})
    return ServiceProfile(default=SLOW, per_method={"analyze": FAST})


def main() -> None:
    config = ScenarioConfig(
        seed=17,
        num_replicas=6,
        service="analytics",
        bursty_network=True,
        extra_methods={"analyze": FAST},  # signature; profiles decide cost
        profile_factory=specialist_profile,
    )
    scenario = Scenario(config)
    client = scenario.add_client(
        "trader-1",
        QoSSpec("analytics", deadline_ms=140.0, min_probability=0.9),
        num_requests=60,
        think_time=Constant(800.0),
        method_chooser=lambda i: "analyze" if i % 3 == 0 else "process",
        policy=DynamicSelectionPolicy(crash_tolerance=2, fixed_overhead_ms=0.3),
        handler_kwargs={
            "classifier": method_classifier,
            "probe_staleness_ms": 2_000.0,
            "gateway_window_size": 5,
        },
    )
    scenario.schedule_crash("replica-1", at_ms=20_000.0)  # a fast specialist
    scenario.run_to_completion()

    summary = client.summary()
    handler = scenario.handlers["trader-1"]

    print("Extensions tour: specialist replicas, bursty LAN, one crash\n")
    print(f"  requests            : {summary.requests}")
    print(f"  timing failures     : {summary.timing_failures} "
          f"(observed {summary.failure_probability:.3f}, budget 0.100)")
    print(f"  lost requests       : {summary.timeouts}")
    print(f"  mean redundancy     : {summary.mean_redundancy:.2f} "
          f"(2-crash hedge raises the floor to 3)")
    print(f"  probes sent         : {handler.probes_sent}")
    print(f"  performance classes : {handler.request_classes()}")

    print("\nPer-class view of replica-2 (an analyze-specialist):")
    for class_key in ("process", "analyze"):
        estimator = handler._estimators.get(class_key)
        if estimator is None or "replica-2" not in handler._repositories[class_key]:
            continue
        probability = estimator.probability_by("replica-2", 140.0)
        shown = "no data yet" if probability is None else f"{probability:.3f}"
        print(f"  F_replica-2(140 ms | {class_key:<8}) = {shown}")

    assert summary.failure_probability <= 0.1
    print("\nAll extensions cooperating: QoS met through the crash.")


if __name__ == "__main__":
    main()
