"""CLI entry point: ``python -m repro_lint [paths...]``.

Exits 0 when every checked file is clean, 1 on violations or parse
errors, 2 on usage errors.  ``--list-rules`` prints the catalog.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .engine import run_paths
from .rules import ALL_RULES, rule_by_id


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the lint pack over the given paths (default: ``src``)."""
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description="repro's determinism/lifecycle lint pack (RL001-RL005)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    rules: List = list(ALL_RULES)
    if args.select:
        try:
            rules = [
                rule_by_id(rule_id.strip())
                for rule_id in args.select.split(",")
                if rule_id.strip()
            ]
        except KeyError as exc:
            print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
            return 2

    report = run_paths(args.paths, rules)
    for violation in report.violations:
        print(violation.render())
    for error in report.parse_errors:
        print(f"repro-lint: parse error: {error}", file=sys.stderr)
    if report.files_checked == 0 and not report.parse_errors:
        print("repro-lint: no Python files found", file=sys.stderr)
        return 2
    summary = (
        f"repro-lint: {report.files_checked} file(s), "
        f"{len(report.violations)} violation(s)"
    )
    print(summary, file=sys.stderr)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
