"""Rule engine: file walking, suppression parsing, violation reporting.

The engine is deliberately small: a :class:`Rule` couples a path
predicate (``applies_to``) with an AST check (``check``); the engine
parses each file once, runs every applicable rule, and filters the
findings through the suppression comments.

Suppression syntax (documented in docs/STATIC_ANALYSIS.md):

* ``# repro-lint: disable=RL003`` — trailing comment on the flagged
  line; suppresses the listed rule(s) (comma-separated) for that line
  only.  An optional parenthesised rationale may follow.
* ``# repro-lint: disable-file=RL001`` — anywhere in the file on its
  own line; suppresses the listed rule(s) for the whole file (used by
  the lint fixtures' clean twins, never in ``src/``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

__all__ = [
    "LintReport",
    "Rule",
    "Violation",
    "check_source",
    "iter_python_files",
    "run_paths",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>RL\d{3}(?:\s*,\s*RL\d{3})*)"
)


@dataclass(frozen=True)
class Violation:
    """One rule finding at a specific source location."""

    rule_id: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        """``path:line: RLxxx message`` — the CLI output format."""
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`/:attr:`title`, implement
    :meth:`applies_to` (path predicate over posix-style paths) and
    :meth:`check` (AST pass returning raw findings — suppression is the
    engine's job).
    """

    rule_id: str = "RL000"
    title: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule inspects the file at ``path``."""
        raise NotImplementedError

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        """Run the rule over a parsed module."""
        raise NotImplementedError

    def violation(self, path: str, node: ast.AST, message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule_id=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 0),
            message=message,
        )


@dataclass
class LintReport:
    """Aggregated result of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the run found nothing (parse failures count as dirty)."""
        return not self.violations and not self.parse_errors


def _suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Parse suppression comments: (line -> rule ids, file-wide rule ids)."""
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        if match.group("kind") == "disable-file":
            whole_file.update(rules)
        else:
            per_line.setdefault(lineno, set()).update(rules)
    return per_line, whole_file


def _normalize(path: str) -> str:
    return path.replace("\\", "/")


def check_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
    *,
    virtual_path: str | None = None,
) -> List[Violation]:
    """Lint one source string.

    ``virtual_path`` lets the fixture tests pretend a file lives at a
    rule-scoped location (e.g. ``src/repro/core/x.py``) while reporting
    findings against the real ``path``.
    """
    scope_path = _normalize(virtual_path if virtual_path is not None else path)
    tree = ast.parse(source, filename=path)
    per_line, whole_file = _suppressions(source)
    findings: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(scope_path):
            continue
        for violation in rule.check(tree, _normalize(path)):
            if violation.rule_id in whole_file:
                continue
            if violation.rule_id in per_line.get(violation.line, set()):
                continue
            findings.append(violation)
    findings.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def run_paths(paths: Iterable[str], rules: Sequence[Rule]) -> LintReport:
    """Lint every Python file under ``paths`` with ``rules``."""
    report = LintReport()
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
            found = check_source(source, str(file_path), rules)
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.parse_errors.append(f"{file_path}: {exc}")
            continue
        report.files_checked += 1
        report.violations.extend(found)
    return report
