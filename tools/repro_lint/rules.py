"""The six repro-lint rules (RL001–RL006).

Each rule documents the invariant it guards and the sanctioned escape
hatch; the full catalog with rationale lives in docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence

from .engine import Rule, Violation

__all__ = [
    "ALL_RULES",
    "RngDiscipline",
    "SimClockOnly",
    "FloatEquality",
    "LifecycleSingleWriter",
    "SlottedHotPath",
    "HostClockDiscipline",
    "rule_by_id",
]


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully dotted module/attribute it refers to."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".", 1)[0]
                aliases[local] = name.name if name.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _resolve(chain: str, aliases: Dict[str, str]) -> str:
    head, _, rest = chain.partition(".")
    resolved_head = aliases.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


def _in_repro(path: str) -> bool:
    return "/repro/" in path or path.startswith("repro/")


class RngDiscipline(Rule):
    """RL001 — all randomness flows through ``repro.rng`` named streams."""

    rule_id = "RL001"
    title = "no ad-hoc RNG construction or global random state"

    #: numpy.random members that are legitimate outside repro.rng: type
    #: names used in annotations and isinstance checks.  Everything else
    #: (default_rng, seed, RandomState, and every module-level draw
    #: function) either constructs an unmanaged stream or touches the
    #: hidden global one.
    SAFE_NUMPY_RANDOM = frozenset(
        {
            "Generator",
            "BitGenerator",
            "SeedSequence",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )

    def applies_to(self, path: str) -> bool:
        return _in_repro(path) and "/rng/" not in path

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        aliases = _import_aliases(tree)
        findings: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random" or name.name.startswith("random."):
                        findings.append(
                            self.violation(
                                path,
                                node,
                                "stdlib `random` is banned; draw from a "
                                "named repro.rng stream instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    findings.append(
                        self.violation(
                            path,
                            node,
                            "stdlib `random` is banned; draw from a "
                            "named repro.rng stream instead",
                        )
                    )
                elif node.module in ("numpy.random", "np.random"):
                    for name in node.names:
                        if name.name not in self.SAFE_NUMPY_RANDOM:
                            findings.append(
                                self.violation(
                                    path,
                                    node,
                                    f"`numpy.random.{name.name}` is banned "
                                    "outside src/repro/rng/; use "
                                    "repro.rng named streams "
                                    "(seeded_generator for a bare seed)",
                                )
                            )
            elif isinstance(node, ast.Attribute):
                chain = _dotted_name(node)
                if chain is None:
                    continue
                resolved = _resolve(chain, aliases)
                match = re.fullmatch(r"numpy\.random\.(\w+)", resolved)
                if match and match.group(1) not in self.SAFE_NUMPY_RANDOM:
                    findings.append(
                        self.violation(
                            path,
                            node,
                            f"`numpy.random.{match.group(1)}` is banned "
                            "outside src/repro/rng/; use repro.rng named "
                            "streams (seeded_generator for a bare seed)",
                        )
                    )
        return findings


class SimClockOnly(Rule):
    """RL002 — simulation layers read time from the sim clock only."""

    rule_id = "RL002"
    title = "no wall-clock reads inside the simulation layers"

    SCOPES = ("/sim/", "/core/", "/gateway/", "/overload/", "/health/")

    #: Wall-clock reads.  ``time.perf_counter`` is deliberately exempt —
    #: it measures host CPU overhead (paper §5.3.3's delta), never
    #: simulated time; docs/STATIC_ANALYSIS.md records the exemption.
    BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    BANNED_FROM_TIME = frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns"}
    )

    def applies_to(self, path: str) -> bool:
        return _in_repro(path) and any(scope in path for scope in self.SCOPES)

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        aliases = _import_aliases(tree)
        findings: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for name in node.names:
                        if name.name in self.BANNED_FROM_TIME:
                            findings.append(
                                self.violation(
                                    path,
                                    node,
                                    f"wall-clock `time.{name.name}` is "
                                    "banned here; use the sim clock "
                                    "(Simulator.now)",
                                )
                            )
            elif isinstance(node, ast.Attribute):
                chain = _dotted_name(node)
                if chain is None:
                    continue
                resolved = _resolve(chain, aliases)
                if resolved in self.BANNED:
                    findings.append(
                        self.violation(
                            path,
                            node,
                            f"wall-clock `{resolved}` is banned here; use "
                            "the sim clock (Simulator.now)",
                        )
                    )
        return findings


class FloatEquality(Rule):
    """RL003 — no bare float ``==``/``!=`` on pmf/time values."""

    rule_id = "RL003"
    title = "no exact float equality on pmf/time values"

    #: Identifier fragments marking a pmf/probability/grid value.
    VALUE_PATTERN = re.compile(
        r"pmf|bin_width|mass|cdf|quantile|probabilit|tolerance"
    )

    def applies_to(self, path: str) -> bool:
        # core/distribution.py owns the sanctioned grid-tolerance
        # helpers and compares exact bin widths by design.
        return _in_repro(path) and not path.endswith("core/distribution.py")

    def _suspicious(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return True
        ident: Optional[str] = None
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            ident = node.attr
        if ident is None:
            return False
        return bool(self.VALUE_PATTERN.search(ident)) or ident.endswith("_ms")

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        findings: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._suspicious(left) or self._suspicious(right):
                    findings.append(
                        self.violation(
                            path,
                            node,
                            "bare float equality on a pmf/time value; "
                            "use math.isclose or the grid-tolerance "
                            "helpers in core/distribution.py",
                        )
                    )
                    break
        return findings


class LifecycleSingleWriter(Rule):
    """RL004 — lifecycle books are written only in ``gateway/handlers/``."""

    rule_id = "RL004"
    title = "lifecycle bookkeeping has a single writer"

    BOOKS = frozenset({"_pending", "_aliases", "_probes_in_flight", "_copies"})
    MUTATORS = frozenset(
        {
            "add",
            "append",
            "clear",
            "discard",
            "extend",
            "insert",
            "pop",
            "popitem",
            "remove",
            "setdefault",
            "update",
        }
    )

    def applies_to(self, path: str) -> bool:
        return _in_repro(path) and "/gateway/handlers/" not in path

    def _is_book(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr in self.BOOKS

    def _book_target(self, node: ast.AST) -> bool:
        """Whether an assignment/delete target touches a book."""
        if self._is_book(node):
            return True
        if isinstance(node, ast.Subscript):
            return self._is_book(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._book_target(elt) for elt in node.elts)
        if isinstance(node, ast.Starred):
            return self._book_target(node.value)
        return False

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        findings: List[Violation] = []

        def flag(node: ast.AST, how: str) -> None:
            findings.append(
                self.violation(
                    path,
                    node,
                    f"{how} of lifecycle bookkeeping outside "
                    "gateway/handlers/ breaks the single-writer "
                    "invariant the LifecycleAuditor audits",
                )
            )

        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if any(self._book_target(t) for t in node.targets):
                    flag(node, "assignment")
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if node.target is not None and self._book_target(node.target):
                    flag(node, "assignment")
            elif isinstance(node, ast.Delete):
                if any(self._book_target(t) for t in node.targets):
                    flag(node, "deletion")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self.MUTATORS
                    and self._is_book(func.value)
                ):
                    flag(node, f"mutating call (.{func.attr})")
        return findings


class SlottedHotPath(Rule):
    """RL005 — hot-path dataclasses must declare ``slots=True``."""

    rule_id = "RL005"
    title = "hot-path dataclasses declare slots=True"

    HOT_FILES = ("net/message.py", "sim/events.py")

    def applies_to(self, path: str) -> bool:
        return _in_repro(path) and any(
            path.endswith(hot) for hot in self.HOT_FILES
        )

    @staticmethod
    def _dataclass_decorator(node: ast.expr) -> Optional[ast.expr]:
        """The decorator node if it is ``dataclass``/``dataclasses.dataclass``."""
        target = node.func if isinstance(node, ast.Call) else node
        name = _dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return node
        return None

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        findings: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                found = self._dataclass_decorator(decorator)
                if found is None:
                    continue
                slotted = isinstance(found, ast.Call) and any(
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in found.keywords
                )
                if not slotted:
                    findings.append(
                        self.violation(
                            path,
                            node,
                            f"dataclass `{node.name}` in a hot-path module "
                            "must declare slots=True",
                        )
                    )
        return findings


class HostClockDiscipline(Rule):
    """RL006 — host-level code stamps on its host clock, not the kernel.

    Gateway handlers model software running *on a host*: every
    timestamp they take must come from that host's virtual clock
    (``self.clock.now``), which the clock-fault plane can skew, step or
    freeze.  Reading ``sim.now`` directly silently re-synchronizes the
    host with the kernel and makes the handler immune to clock faults —
    precisely the bug class A18 exists to catch.  Physical processes
    (tracing, wire-level scheduling) read ``self.clock.kernel_now``,
    the sanctioned escape; scheduling (``sim.call_in``/``call_at``/
    ``timeout``) is untouched — only the ``.now`` read is host-visible.
    """

    rule_id = "RL006"
    title = "host-level timestamps come from the host clock"

    SCOPES = ("/gateway/handlers/",)

    def applies_to(self, path: str) -> bool:
        return _in_repro(path) and any(scope in path for scope in self.SCOPES)

    def check(self, tree: ast.Module, path: str) -> List[Violation]:
        findings: List[Violation] = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Attribute) and node.attr == "now"):
                continue
            value = node.value
            base: Optional[str] = None
            if isinstance(value, ast.Attribute):
                base = value.attr
            elif isinstance(value, ast.Name):
                base = value.id
            if base == "sim":
                findings.append(
                    self.violation(
                        path,
                        node,
                        "kernel time `sim.now` leaks into host-level "
                        "code; stamp with the host clock "
                        "(`self.clock.now`, or `self.clock.kernel_now` "
                        "for physical/trace time)",
                    )
                )
        return findings


ALL_RULES: Sequence[Rule] = (
    RngDiscipline(),
    SimClockOnly(),
    FloatEquality(),
    LifecycleSingleWriter(),
    SlottedHotPath(),
    HostClockDiscipline(),
)


def rule_by_id(rule_id: str) -> Rule:
    """Look up a rule instance by its ``RLxxx`` id."""
    for rule in ALL_RULES:
        if rule.rule_id == rule_id:
            return rule
    raise KeyError(f"unknown rule id {rule_id!r}")
