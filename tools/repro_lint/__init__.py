"""repro-lint: the repository's custom determinism/lifecycle lint pack.

Five AST-based rules encode the invariants that keep the reproduction
deterministic and its request lifecycle auditable — properties a general
linter cannot know about:

* **RL001** — all randomness flows through ``repro.rng`` named streams:
  no stdlib ``random``, no ``np.random.seed``/``RandomState``, no ad-hoc
  ``np.random.default_rng`` outside ``src/repro/rng/``.
* **RL002** — the simulation layers tell time only through the sim
  clock: no ``time.time``/``time.monotonic``/``datetime.now`` inside
  ``sim/``, ``core/``, ``gateway/``, ``overload/``, ``health/``
  (``time.perf_counter`` is exempt: it measures host CPU overhead, not
  simulated time — see docs/STATIC_ANALYSIS.md).
* **RL003** — no bare float ``==``/``!=`` on pmf/time-valued
  expressions; exact comparisons belong to the grid-tolerance helpers in
  ``core/distribution.py``.
* **RL004** — the request-lifecycle books (``_pending``, ``_aliases``,
  ``_probes_in_flight``, ``_copies``) are mutated only inside
  ``gateway/handlers/`` (the single-writer invariant the
  :class:`~repro.faultinject.auditor.LifecycleAuditor` relies on).
* **RL005** — hot-path dataclasses in ``net/message.py`` and
  ``sim/events.py`` must declare ``slots=True``.

Run as ``python -m repro_lint src/`` (exits non-zero on violations) or
through the pytest suite in ``tests/lint/``.  Suppress a finding with a
trailing ``# repro-lint: disable=RL00x (reason)`` comment; see
docs/STATIC_ANALYSIS.md for the full catalog and suppression policy.
"""

from .engine import (
    LintReport,
    Rule,
    Violation,
    check_source,
    iter_python_files,
    run_paths,
)
from .rules import ALL_RULES, rule_by_id

__all__ = [
    "ALL_RULES",
    "LintReport",
    "Rule",
    "Violation",
    "check_source",
    "iter_python_files",
    "rule_by_id",
    "run_paths",
]

__version__ = "1.0.0"
